#include "games/kc_game.h"

#include <set>

#include "common/macros.h"

namespace dbph {
namespace games {

using rel::Relation;
using rel::Schema;
using rel::Value;
using rel::ValueType;

Result<BinomialSummary> RunKcGame(const core::DbphOptions& options, size_t q,
                                  Definition21Adversary* adversary,
                                  size_t trials, uint64_t seed) {
  BinomialSummary summary;
  crypto::HmacDrbg rng("kc-game/" + adversary->Name(), seed);

  for (size_t trial = 0; trial < trials; ++trial) {
    auto [t1, t2] = adversary->ChooseTables(&rng);
    if (!(t1.schema() == t2.schema()) || t1.size() != t2.size()) {
      return Status::FailedPrecondition(
          "KC game requires same-schema, same-cardinality tables");
    }

    auto queries = adversary->ChooseQueries(q);
    if (queries.size() > q) queries.resize(q);
    // KC constraint: every query must return equally many tuples on both
    // tables (evaluated on plaintext by the referee).
    for (const auto& [attribute, value] : queries) {
      DBPH_ASSIGN_OR_RETURN(Relation r1, t1.Select(attribute, value));
      DBPH_ASSIGN_OR_RETURN(Relation r2, t2.Select(attribute, value));
      if (r1.size() != r2.size()) {
        return Status::FailedPrecondition(
            "KC game: query sigma_{" + attribute +
            "} returns different cardinalities on T1 and T2");
      }
    }

    Bytes master = core::GenerateMasterKey(&rng);
    DBPH_ASSIGN_OR_RETURN(core::DatabasePh ph,
                          core::DatabasePh::Create(t1.schema(), master,
                                                   options));
    int secret = rng.NextBool() ? 1 : 2;
    const Relation& chosen = (secret == 1) ? t1 : t2;
    DBPH_ASSIGN_OR_RETURN(core::EncryptedRelation ciphertext,
                          ph.EncryptRelation(chosen, &rng));

    Definition21View view;
    view.ciphertext = &ciphertext;
    for (const auto& [attribute, value] : queries) {
      DBPH_ASSIGN_OR_RETURN(
          core::EncryptedQuery enc_query,
          ph.EncryptQuery(ciphertext.name, attribute, value));
      view.results.push_back(ExecuteSelect(ciphertext, enc_query));
      view.encrypted_queries.push_back(std::move(enc_query));
    }

    int guess = adversary->Guess(view, &rng);
    ++summary.trials;
    if (guess == secret) ++summary.successes;
  }
  return summary;
}

namespace {

Schema TwoFlagSchema() {
  // Length 6 keeps the word length comfortably above the default check
  // width (words are value field + id = 7 bytes).
  auto schema = Schema::Create({
      {"a", ValueType::kInt64, 6},
      {"b", ValueType::kInt64, 6},
  });
  return *schema;
}

/// T1 = {(1,1),(0,0)}: sigma_{a=1} and sigma_{b=1} hit the SAME tuple.
/// T2 = {(1,0),(0,1)}: they hit DIFFERENT tuples.
/// Every query returns exactly one tuple on either table.
std::pair<Relation, Relation> MakeIntersectionTables() {
  Schema schema = TwoFlagSchema();
  Relation t1("T", schema);
  (void)t1.Insert({Value::Int(1), Value::Int(1)});
  (void)t1.Insert({Value::Int(0), Value::Int(0)});
  Relation t2("T", schema);
  (void)t2.Insert({Value::Int(1), Value::Int(0)});
  (void)t2.Insert({Value::Int(0), Value::Int(1)});
  return {std::move(t1), std::move(t2)};
}

}  // namespace

std::pair<Relation, Relation> KcSizeOnlyAdversary::ChooseTables(
    crypto::Rng*) {
  return MakeIntersectionTables();
}

std::vector<std::pair<std::string, Value>> KcSizeOnlyAdversary::ChooseQueries(
    size_t q) {
  std::vector<std::pair<std::string, Value>> queries = {
      {"a", Value::Int(1)}};
  if (q >= 2) queries.push_back({"b", Value::Int(1)});
  return queries;
}

int KcSizeOnlyAdversary::Guess(const Definition21View& view,
                               crypto::Rng* rng) {
  // Sizes are identical on both tables by construction; counting alone
  // cannot help. Anything this adversary computes from cardinalities is
  // a coin flip.
  (void)view;
  return rng->NextBool() ? 1 : 2;
}

std::pair<Relation, Relation> IntersectionPatternAdversary::ChooseTables(
    crypto::Rng*) {
  return MakeIntersectionTables();
}

std::vector<std::pair<std::string, Value>>
IntersectionPatternAdversary::ChooseQueries(size_t q) {
  std::vector<std::pair<std::string, Value>> queries = {
      {"a", Value::Int(1)}};
  if (q >= 2) queries.push_back({"b", Value::Int(1)});
  return queries;
}

int IntersectionPatternAdversary::Guess(const Definition21View& view,
                                        crypto::Rng* rng) {
  if (view.results.size() < 2) return rng->NextBool() ? 1 : 2;
  std::set<size_t> first(view.results[0].begin(), view.results[0].end());
  for (size_t doc : view.results[1]) {
    if (first.count(doc) > 0) return 1;  // overlap => T1
  }
  return 2;
}

}  // namespace games
}  // namespace dbph
