#ifndef DBPH_GAMES_KC_GAME_H_
#define DBPH_GAMES_KC_GAME_H_

#include <string>

#include "games/dbph_game.h"

namespace dbph {
namespace games {

/// \brief The Kantarcıoğlu–Clifton security game (paper Section 2,
/// reference [5]): Definition 2.1 with the *additional constraint* that
/// every adversary query must return the same number of tuples on T1 and
/// T2 ("any two queries returning the same number of tuples are
/// indistinguishable").
///
/// The harness enforces the constraint by evaluating the plaintext
/// queries on both tables and rejecting trials that violate it — an
/// adversary cannot cheat by size.
///
/// The paper's two claims, both reproduced here:
///  1. the definition is *satisfiable* (unlike Definition 2.1 — compare
///     E2): size-only adversaries gain nothing;
///  2. it is still *insufficient*: result sets expose intersection
///     structure beyond their cardinalities, and the
///     IntersectionPatternAdversary wins with probability ~1.
Result<BinomialSummary> RunKcGame(const core::DbphOptions& options, size_t q,
                                  Definition21Adversary* adversary,
                                  size_t trials, uint64_t seed);

/// \brief KC-compliant adversary that only uses result *sizes*. Both its
/// queries return exactly one tuple on either table, so under the KC
/// definition it should win — and, against our scheme, provably cannot.
class KcSizeOnlyAdversary : public Definition21Adversary {
 public:
  std::string Name() const override { return "kc-size-only"; }
  std::pair<rel::Relation, rel::Relation> ChooseTables(
      crypto::Rng* rng) override;
  std::vector<std::pair<std::string, rel::Value>> ChooseQueries(
      size_t q) override;
  int Guess(const Definition21View& view, crypto::Rng* rng) override;
};

/// \brief The paper's counterexample to the KC definition: both queries
/// return one tuple on either table, but on T1 they hit the *same* tuple
/// and on T2 *different* tuples. Intersecting the result sets
/// distinguishes with probability ~1 while satisfying every KC
/// constraint.
class IntersectionPatternAdversary : public Definition21Adversary {
 public:
  std::string Name() const override { return "kc-intersection"; }
  std::pair<rel::Relation, rel::Relation> ChooseTables(
      crypto::Rng* rng) override;
  std::vector<std::pair<std::string, rel::Value>> ChooseQueries(
      size_t q) override;
  int Guess(const Definition21View& view, crypto::Rng* rng) override;
};

}  // namespace games
}  // namespace dbph

#endif  // DBPH_GAMES_KC_GAME_H_
