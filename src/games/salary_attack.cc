#include "games/salary_attack.h"

#include <set>

namespace dbph {
namespace games {

using rel::Relation;
using rel::Schema;
using rel::Value;
using rel::ValueType;

Schema SalarySchema() {
  auto schema = Schema::Create({
      {"id", ValueType::kInt64, 10},
      {"salary", ValueType::kInt64, 10},
  });
  return *schema;  // static schema; cannot fail
}

std::pair<Relation, Relation> MakeSalaryTables() {
  Schema schema = SalarySchema();
  Relation t1("T", schema);
  (void)t1.Insert({Value::Int(171), Value::Int(4900)});
  (void)t1.Insert({Value::Int(481), Value::Int(1200)});
  Relation t2("T", schema);
  (void)t2.Insert({Value::Int(171), Value::Int(4900)});
  (void)t2.Insert({Value::Int(481), Value::Int(4900)});
  return {std::move(t1), std::move(t2)};
}

namespace {

/// Shared guessing rule: distinct salary labels -> table 1.
template <typename Tuples>
int GuessFromSalaryLabels(const Tuples& tuples) {
  std::set<Bytes> labels;
  for (const auto& t : tuples) {
    labels.insert(t.labels[1]);  // attribute 1 = salary
  }
  return labels.size() >= 2 ? 1 : 2;
}

}  // namespace

std::pair<Relation, Relation> BucketSalaryAdversary::ChooseTables(
    crypto::Rng*) {
  return MakeSalaryTables();
}

int BucketSalaryAdversary::Guess(const baseline::BucketRelation& view,
                                 crypto::Rng*) {
  return GuessFromSalaryLabels(view.tuples);
}

std::pair<Relation, Relation> DamianiSalaryAdversary::ChooseTables(
    crypto::Rng*) {
  return MakeSalaryTables();
}

int DamianiSalaryAdversary::Guess(const baseline::HashedRelation& view,
                                  crypto::Rng*) {
  return GuessFromSalaryLabels(view.tuples);
}

std::pair<Relation, Relation> DbphSalaryAdversary::ChooseTables(
    crypto::Rng*) {
  return MakeSalaryTables();
}

int DbphSalaryAdversary::Guess(const core::EncryptedRelation& view,
                               crypto::Rng* rng) {
  // Apply the very same statistic: look for identical ciphertext words
  // across documents. The SWP stream pad makes every word unique, so the
  // statistic is uninformative and the adversary must flip a coin.
  std::set<Bytes> words;
  size_t total = 0;
  for (const auto& doc : view.documents) {
    for (const auto& w : doc.words) {
      words.insert(w);
      ++total;
    }
  }
  if (words.size() < total) return 2;  // a repeat would mean equal values
  return rng->NextBool() ? 1 : 2;
}

}  // namespace games
}  // namespace dbph
