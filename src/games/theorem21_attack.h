#ifndef DBPH_GAMES_THEOREM21_ATTACK_H_
#define DBPH_GAMES_THEOREM21_ATTACK_H_

#include <string>

#include "games/dbph_game.h"

namespace dbph {
namespace games {

/// \brief The adversary behind Theorem 2.1: *any* database PH loses the
/// Definition 2.1 game once a single encrypted query flows (q > 0).
///
/// Strategy: choose T1 where no tuple satisfies sigma_{dept = "XX"} and
/// T2 where every tuple does. Ask the oracle for Eq(sigma_{dept=XX}) and
/// run it on the ciphertext — the homomorphism property *itself* is the
/// leak: a non-empty result identifies T2 regardless of how strong the
/// word encryption is. Success probability 1 - (false-positive rate).
///
/// The same adversary at q = 0 receives no oracle output and degenerates
/// to guessing, which is exactly the regime the paper's construction is
/// proved secure in.
class Theorem21Adversary : public Definition21Adversary {
 public:
  /// `table_size` tuples per table.
  explicit Theorem21Adversary(size_t table_size = 8)
      : table_size_(table_size) {}

  std::string Name() const override { return "theorem-2.1"; }
  std::pair<rel::Relation, rel::Relation> ChooseTables(
      crypto::Rng* rng) override;
  std::vector<std::pair<std::string, rel::Value>> ChooseQueries(
      size_t q) override;
  int Guess(const Definition21View& view, crypto::Rng* rng) override;

 private:
  size_t table_size_;
};

/// \brief Passive variant of the same leak: Eve cannot choose queries but
/// observes Alex's. Modeled by the harness executing Alex's fixed query
/// workload; see the hospital experiment (hospital.h) for the full
/// passive-inference reproduction.
class PassiveResultSizeAdversary : public Definition21Adversary {
 public:
  explicit PassiveResultSizeAdversary(size_t table_size = 8)
      : table_size_(table_size) {}

  std::string Name() const override { return "passive-result-size"; }
  std::pair<rel::Relation, rel::Relation> ChooseTables(
      crypto::Rng* rng) override;
  /// Models observing Alex's query sigma_{dept=AA} (Eve knows the
  /// workload but did not choose it).
  std::vector<std::pair<std::string, rel::Value>> ChooseQueries(
      size_t q) override;
  int Guess(const Definition21View& view, crypto::Rng* rng) override;

 private:
  size_t table_size_;
};

}  // namespace games
}  // namespace dbph

#endif  // DBPH_GAMES_THEOREM21_ATTACK_H_
