#include "games/theorem21_attack.h"

namespace dbph {
namespace games {

using rel::Relation;
using rel::Schema;
using rel::Value;
using rel::ValueType;

namespace {

Schema DeptSchema() {
  auto schema = Schema::Create({
      {"name", ValueType::kString, 8},
      {"dept", ValueType::kString, 4},
  });
  return *schema;
}

/// T1: dept column all "YY" (query misses); T2: all "XX" (query hits).
std::pair<Relation, Relation> MakeDeptTables(size_t n) {
  Schema schema = DeptSchema();
  Relation t1("T", schema);
  Relation t2("T", schema);
  for (size_t i = 0; i < n; ++i) {
    std::string name = "emp" + std::to_string(i);
    (void)t1.Insert({Value::Str(name), Value::Str("YY")});
    (void)t2.Insert({Value::Str(name), Value::Str("XX")});
  }
  return {std::move(t1), std::move(t2)};
}

}  // namespace

std::pair<Relation, Relation> Theorem21Adversary::ChooseTables(
    crypto::Rng*) {
  return MakeDeptTables(table_size_);
}

std::vector<std::pair<std::string, rel::Value>>
Theorem21Adversary::ChooseQueries(size_t q) {
  // One query suffices; if the oracle allows more, ask for both values to
  // sharpen the decision.
  std::vector<std::pair<std::string, rel::Value>> queries = {
      {"dept", Value::Str("XX")}};
  if (q >= 2) queries.push_back({"dept", Value::Str("YY")});
  return queries;
}

int Theorem21Adversary::Guess(const Definition21View& view,
                              crypto::Rng* rng) {
  if (view.results.empty()) {
    // q = 0: the oracle is gone and the ciphertext alone is (provably)
    // useless to this adversary.
    return rng->NextBool() ? 1 : 2;
  }
  // Result of sigma_{dept=XX}: hits => T2.
  if (!view.results[0].empty()) return 2;
  return 1;
}

std::pair<Relation, Relation> PassiveResultSizeAdversary::ChooseTables(
    crypto::Rng*) {
  return MakeDeptTables(table_size_);
}

std::vector<std::pair<std::string, rel::Value>>
PassiveResultSizeAdversary::ChooseQueries(size_t q) {
  // Alex's observed workload: he queries his own department column.
  (void)q;
  return {{"dept", Value::Str("XX")}};
}

int PassiveResultSizeAdversary::Guess(const Definition21View& view,
                                      crypto::Rng* rng) {
  if (view.results.empty()) return rng->NextBool() ? 1 : 2;
  // Eve only counts: a full-table result identifies T2.
  return view.results[0].size() == view.ciphertext->size() ? 2 : 1;
}

}  // namespace games
}  // namespace dbph
