#include "games/dbph_game.h"

#include "common/macros.h"

namespace dbph {
namespace games {

Result<BinomialSummary> RunDefinition21Game(
    const core::DbphOptions& options, size_t q,
    Definition21Adversary* adversary, size_t trials, uint64_t seed) {
  BinomialSummary summary;
  crypto::HmacDrbg rng("def21-game/" + adversary->Name(), seed);

  for (size_t trial = 0; trial < trials; ++trial) {
    auto [t1, t2] = adversary->ChooseTables(&rng);
    if (!(t1.schema() == t2.schema()) || t1.size() != t2.size()) {
      return Status::FailedPrecondition(
          "Definition 2.1 requires same-schema, same-cardinality tables");
    }

    // Challenger: fresh key, secret bit, encrypt.
    Bytes master = core::GenerateMasterKey(&rng);
    DBPH_ASSIGN_OR_RETURN(core::DatabasePh ph,
                          core::DatabasePh::Create(t1.schema(), master,
                                                   options));
    int secret = rng.NextBool() ? 1 : 2;
    const rel::Relation& chosen = (secret == 1) ? t1 : t2;
    DBPH_ASSIGN_OR_RETURN(core::EncryptedRelation ciphertext,
                          ph.EncryptRelation(chosen, &rng));

    // Query-encryption oracle: Eve gets Eq of her chosen queries plus the
    // results of executing them on the ciphertext.
    Definition21View view;
    view.ciphertext = &ciphertext;
    if (q > 0) {
      auto queries = adversary->ChooseQueries(q);
      if (queries.size() > q) queries.resize(q);
      for (const auto& [attribute, value] : queries) {
        DBPH_ASSIGN_OR_RETURN(
            core::EncryptedQuery enc_query,
            ph.EncryptQuery(ciphertext.name, attribute, value));
        view.results.push_back(ExecuteSelect(ciphertext, enc_query));
        view.encrypted_queries.push_back(std::move(enc_query));
      }
    }

    int guess = adversary->Guess(view, &rng);
    ++summary.trials;
    if (guess == secret) ++summary.successes;
  }
  return summary;
}

}  // namespace games
}  // namespace dbph
