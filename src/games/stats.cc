#include "games/stats.h"

#include <cmath>
#include <cstdio>

namespace dbph {
namespace games {

namespace {
constexpr double kZ95 = 1.959963984540054;

double Wilson(double p, double n, double z, int sign) {
  double z2 = z * z;
  double denom = 1.0 + z2 / n;
  double center = p + z2 / (2.0 * n);
  double margin = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return (center + sign * margin) / denom;
}
}  // namespace

double BinomialSummary::WilsonLow() const {
  if (trials == 0) return 0.0;
  return Wilson(rate(), static_cast<double>(trials), kZ95, -1);
}

double BinomialSummary::WilsonHigh() const {
  if (trials == 0) return 1.0;
  return Wilson(rate(), static_cast<double>(trials), kZ95, +1);
}

std::string BinomialSummary::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%zu/%zu = %.3f [%.3f, %.3f]", successes,
                trials, rate(), WilsonLow(), WilsonHigh());
  return buf;
}

double BinomialZTestPValue(const BinomialSummary& summary, double p0) {
  if (summary.trials == 0) return 1.0;
  double n = static_cast<double>(summary.trials);
  double se = std::sqrt(p0 * (1.0 - p0) / n);
  if (se == 0.0) return summary.rate() == p0 ? 1.0 : 0.0;
  double z = (summary.rate() - p0) / se;
  // Two-sided p-value via the complementary error function.
  return std::erfc(std::fabs(z) / std::sqrt(2.0));
}

}  // namespace games
}  // namespace dbph
