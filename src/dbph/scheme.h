#ifndef DBPH_DBPH_SCHEME_H_
#define DBPH_DBPH_SCHEME_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "crypto/hmac.h"
#include "crypto/random.h"
#include "dbph/document.h"
#include "dbph/encrypted_relation.h"
#include "dbph/query.h"
#include "relation/relation.h"
#include "swp/scheme.h"

namespace dbph {
namespace core {

/// \brief Configuration of the database privacy homomorphism.
struct DbphOptions {
  /// Check bytes per word; per-word false-positive rate is 2^(-8m).
  size_t check_length = 4;
  /// The SWP construction words are encrypted with. Only the final scheme
  /// both hides queries and decrypts; the others are exposed for the
  /// ablation experiments.
  swp::SchemeVariant variant = swp::SchemeVariant::kFinal;
  /// Variable-length word classes (the full-version optimization).
  bool variable_length = false;
  /// Shuffle word slots per tuple so documents are sets (paper semantics).
  bool shuffle_slots = true;
  /// Nonce bytes per tuple.
  size_t nonce_length = 16;
  /// Append an HMAC tag to every document and verify it before
  /// decryption. Detects a server that substitutes, splices or corrupts
  /// ciphertexts (beyond the paper's honest-but-curious model).
  bool authenticate_documents = true;
};

/// \brief The paper's database privacy homomorphism (K, E, Eq, D).
///
/// One instance is bound to a relation schema and a master key:
///
///  - E  = EncryptRelation / EncryptTuple — tuple-by-tuple encryption into
///    documents of SWP-encrypted words (Definition 1.1, condition 1);
///  - Eq = EncryptQuery — maps σ_{a:v} to a search trapdoor
///    ϕ_{toString(v)|id(a)};
///  - ψ  = ExecuteSelect (a free function over public data only) — the
///    ciphertext operation the untrusted server runs;
///  - D  = DecryptTuple / DecryptRelation, plus DecryptAndFilter which
///    removes SWP false positives by re-checking the plaintext predicate
///    (the paper's client-side filter).
///
/// The homomorphism property E_k(σ(R)) = ψ(Eq_k(σ), E_k(R)) holds up to
/// the documented false-positive rate; after the filter the result is
/// exact. See tests/dbph_scheme_test.cc::HomomorphismProperty.
class DatabasePh {
 public:
  static Result<DatabasePh> Create(const rel::Schema& schema,
                                   const Bytes& master_key,
                                   const DbphOptions& options = {});

  const rel::Schema& schema() const { return mapper_.schema(); }
  const DbphOptions& options() const { return options_; }
  const DocumentMapper& mapper() const { return mapper_; }

  /// E_k on one tuple: builds the document, shuffles the slots, encrypts
  /// each word against a fresh per-tuple nonce.
  Result<swp::EncryptedDocument> EncryptTuple(const rel::Tuple& tuple,
                                              crypto::Rng* rng) const;

  /// E_k on a relation (tuple-by-tuple, per Definition 1.1).
  Result<EncryptedRelation> EncryptRelation(const rel::Relation& relation,
                                            crypto::Rng* rng) const;

  /// D_k on one document.
  Result<rel::Tuple> DecryptTuple(const swp::EncryptedDocument& doc) const;

  /// D_k on a whole encrypted relation.
  Result<rel::Relation> DecryptRelation(const EncryptedRelation& enc) const;

  /// Eq_k(σ_{attribute:value}).
  Result<EncryptedQuery> EncryptQuery(const std::string& relation,
                                      const std::string& attribute,
                                      const rel::Value& value) const;

  /// Eq_k on a conjunction (one trapdoor per term).
  Result<EncryptedConjunction> EncryptConjunction(
      const std::string& relation,
      const std::vector<std::pair<std::string, rel::Value>>& terms) const;

  /// Decrypts the documents the server returned for σ and drops false
  /// positives by re-evaluating the plaintext predicate.
  Result<rel::Relation> DecryptAndFilter(
      const std::vector<swp::EncryptedDocument>& docs,
      const std::string& attribute, const rel::Value& value) const;

 private:
  DatabasePh(DocumentMapper mapper, DbphOptions options, Bytes stream_key,
             Bytes mac_key,
             std::map<size_t, std::unique_ptr<swp::SearchableScheme>> schemes)
      : mapper_(std::move(mapper)),
        options_(options),
        stream_key_(std::move(stream_key)),
        mac_key_(std::move(mac_key)),
        mac_schedule_(mac_key_),
        schemes_(std::move(schemes)) {}

  const swp::SearchableScheme& SchemeFor(size_t word_length) const {
    return *schemes_.at(word_length);
  }

  DocumentMapper mapper_;
  DbphOptions options_;
  Bytes stream_key_;
  Bytes mac_key_;
  /// The MAC key's HMAC schedule, derived once: tagging/verifying a
  /// document costs no per-document key-schedule rebuild and no
  /// serialized MAC-input buffer (see EncryptedDocument::MacTag).
  crypto::HmacSha256Precomputed mac_schedule_;
  /// One SWP scheme per distinct word length (a single entry in fixed
  /// mode); all share subkeys derived from the same master.
  std::map<size_t, std::unique_ptr<swp::SearchableScheme>> schemes_;
};

/// \brief ψ: the server-side ciphertext operation. Returns the indices of
/// documents containing a word that matches the trapdoor.
///
/// Takes only public data — the encrypted relation and the encrypted
/// query — mirroring that the server holds no keys.
std::vector<size_t> ExecuteSelect(const EncryptedRelation& relation,
                                  const EncryptedQuery& query);

/// \brief ψ for conjunctions: documents matching *all* trapdoors.
std::vector<size_t> ExecuteConjunction(const EncryptedRelation& relation,
                                       const EncryptedConjunction& query);

/// \brief Generates a fresh uniformly random master key (the paper's
/// K <- K with security parameter n = 8 * `bytes`).
Bytes GenerateMasterKey(crypto::Rng* rng, size_t bytes = 32);

}  // namespace core
}  // namespace dbph

#endif  // DBPH_DBPH_SCHEME_H_
