#include "dbph/query.h"

#include "common/macros.h"

namespace dbph {
namespace core {

void EncryptedQuery::AppendTo(Bytes* out) const {
  AppendLengthPrefixed(out, ToBytes(relation));
  trapdoor.AppendTo(out);
}

Result<EncryptedQuery> EncryptedQuery::ReadFrom(ByteReader* reader) {
  EncryptedQuery q;
  DBPH_ASSIGN_OR_RETURN(Bytes name, reader->ReadLengthPrefixed());
  q.relation = ToString(name);
  DBPH_ASSIGN_OR_RETURN(q.trapdoor, swp::Trapdoor::ReadFrom(reader));
  return q;
}

}  // namespace core
}  // namespace dbph
