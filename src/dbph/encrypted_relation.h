#ifndef DBPH_DBPH_ENCRYPTED_RELATION_H_
#define DBPH_DBPH_ENCRYPTED_RELATION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "swp/search.h"

namespace dbph {
namespace core {

/// \brief The ciphertext C = {c_1, ..., c_n} of Definition 1.1: one
/// encrypted document per tuple, in storage order carrying no plaintext
/// meaning.
///
/// This is everything the untrusted server holds: the table handle, the
/// check width needed to evaluate trapdoors, and the opaque documents.
/// Note the absence of the schema — only word-length structure is visible.
struct EncryptedRelation {
  std::string name;
  /// Check bytes per word (public; the server needs it to match).
  uint32_t check_length = 4;
  std::vector<swp::EncryptedDocument> documents;

  size_t size() const { return documents.size(); }

  void AppendTo(Bytes* out) const;
  static Result<EncryptedRelation> ReadFrom(ByteReader* reader);

  /// Ciphertext bytes across all documents (for the overhead experiment).
  size_t CiphertextBytes() const;
};

}  // namespace core
}  // namespace dbph

#endif  // DBPH_DBPH_ENCRYPTED_RELATION_H_
