#include "dbph/scheme.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"
#include "crypto/hkdf.h"
#include "crypto/hmac.h"
#include "swp/search.h"

namespace dbph {
namespace core {

Result<DatabasePh> DatabasePh::Create(const rel::Schema& schema,
                                      const Bytes& master_key,
                                      const DbphOptions& options) {
  if (master_key.empty()) {
    return Status::InvalidArgument("empty master key");
  }
  if (options.nonce_length < 8) {
    return Status::InvalidArgument("nonce must be at least 8 bytes");
  }
  DBPH_ASSIGN_OR_RETURN(
      DocumentMapper mapper,
      DocumentMapper::Create(schema, options.variable_length));

  // The SWP subkeys derive from a dedicated branch of the master key.
  Bytes swp_master = crypto::DeriveSubkey(master_key, "dbph/swp-master");
  Bytes stream_key = swp::SwpKeys::Derive(swp_master).stream_key;
  Bytes mac_key = crypto::DeriveSubkey(master_key, "dbph/document-mac");

  std::map<size_t, std::unique_ptr<swp::SearchableScheme>> schemes;
  for (size_t len : mapper.DistinctWordLengths()) {
    if (options.check_length >= len) {
      return Status::InvalidArgument(
          "check_length " + std::to_string(options.check_length) +
          " leaves no left part for words of length " + std::to_string(len) +
          " (shrink check_length or lengthen attributes)");
    }
    swp::SwpParams params{len, options.check_length};
    DBPH_ASSIGN_OR_RETURN(auto scheme,
                          CreateScheme(options.variant, params, swp_master));
    schemes.emplace(len, std::move(scheme));
  }
  return DatabasePh(std::move(mapper), options, std::move(stream_key),
                    std::move(mac_key), std::move(schemes));
}

Result<swp::EncryptedDocument> DatabasePh::EncryptTuple(
    const rel::Tuple& tuple, crypto::Rng* rng) const {
  DBPH_ASSIGN_OR_RETURN(std::vector<Bytes> words,
                        mapper_.MakeDocument(tuple));

  // Slot assignment: a uniformly random permutation per tuple makes the
  // document a *set* of words, as the paper requires. Decryption never
  // needs the permutation — attribute ids reassign words to attributes.
  std::vector<size_t> slot_to_attr(words.size());
  std::iota(slot_to_attr.begin(), slot_to_attr.end(), 0);
  if (options_.shuffle_slots) {
    for (size_t i = slot_to_attr.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(rng->NextBelow(i));
      std::swap(slot_to_attr[i - 1], slot_to_attr[j]);
    }
  }

  swp::EncryptedDocument doc;
  doc.nonce = rng->NextBytes(options_.nonce_length);
  crypto::StreamGenerator stream(stream_key_, doc.nonce);
  doc.words.reserve(words.size());
  for (size_t slot = 0; slot < slot_to_attr.size(); ++slot) {
    size_t attr = slot_to_attr[slot];
    const auto& scheme = SchemeFor(mapper_.WordLengthFor(attr));
    DBPH_ASSIGN_OR_RETURN(Bytes cipher,
                          scheme.EncryptWord(stream, slot, words[attr]));
    doc.words.push_back(std::move(cipher));
  }
  if (options_.authenticate_documents) {
    doc.tag = doc.MacTag(mac_schedule_);
  }
  return doc;
}

Result<EncryptedRelation> DatabasePh::EncryptRelation(
    const rel::Relation& relation, crypto::Rng* rng) const {
  if (!(relation.schema() == mapper_.schema())) {
    return Status::InvalidArgument(
        "relation schema does not match this database PH");
  }
  EncryptedRelation out;
  out.name = relation.name();
  out.check_length = static_cast<uint32_t>(options_.check_length);
  out.documents.reserve(relation.size());
  for (const rel::Tuple& tuple : relation.tuples()) {
    DBPH_ASSIGN_OR_RETURN(swp::EncryptedDocument doc,
                          EncryptTuple(tuple, rng));
    out.documents.push_back(std::move(doc));
  }
  return out;
}

Result<rel::Tuple> DatabasePh::DecryptTuple(
    const swp::EncryptedDocument& doc) const {
  if (options_.authenticate_documents) {
    Bytes expected = doc.MacTag(mac_schedule_);
    if (!ConstantTimeEqual(expected, doc.tag)) {
      return Status::DataLoss(
          "document authentication failed: the server returned a "
          "substituted or corrupted ciphertext");
    }
  }
  crypto::StreamGenerator stream(stream_key_, doc.nonce);
  std::vector<Bytes> words;
  words.reserve(doc.words.size());
  for (size_t slot = 0; slot < doc.words.size(); ++slot) {
    auto it = schemes_.find(doc.words[slot].size());
    if (it == schemes_.end()) {
      return Status::DataLoss("ciphertext word of unknown length class");
    }
    DBPH_ASSIGN_OR_RETURN(Bytes word,
                          it->second->DecryptWord(stream, slot,
                                                  doc.words[slot]));
    words.push_back(std::move(word));
  }
  return mapper_.ReassembleTuple(words);
}

Result<rel::Relation> DatabasePh::DecryptRelation(
    const EncryptedRelation& enc) const {
  rel::Relation out(enc.name, mapper_.schema());
  for (const auto& doc : enc.documents) {
    DBPH_ASSIGN_OR_RETURN(rel::Tuple tuple, DecryptTuple(doc));
    DBPH_RETURN_IF_ERROR(out.Insert(std::move(tuple)));
  }
  return out;
}

Result<EncryptedQuery> DatabasePh::EncryptQuery(
    const std::string& relation, const std::string& attribute,
    const rel::Value& value) const {
  DBPH_ASSIGN_OR_RETURN(size_t attr, mapper_.schema().IndexOf(attribute));
  DBPH_ASSIGN_OR_RETURN(Bytes word, mapper_.MakeWord(attr, value));
  const auto& scheme = SchemeFor(mapper_.WordLengthFor(attr));
  DBPH_ASSIGN_OR_RETURN(swp::Trapdoor trapdoor, scheme.MakeTrapdoor(word));
  EncryptedQuery q;
  q.relation = relation;
  q.trapdoor = std::move(trapdoor);
  return q;
}

Result<EncryptedConjunction> DatabasePh::EncryptConjunction(
    const std::string& relation,
    const std::vector<std::pair<std::string, rel::Value>>& terms) const {
  if (terms.empty()) {
    return Status::InvalidArgument("conjunction needs at least one term");
  }
  EncryptedConjunction out;
  out.relation = relation;
  for (const auto& [attribute, value] : terms) {
    DBPH_ASSIGN_OR_RETURN(EncryptedQuery q,
                          EncryptQuery(relation, attribute, value));
    out.trapdoors.push_back(std::move(q.trapdoor));
  }
  return out;
}

Result<rel::Relation> DatabasePh::DecryptAndFilter(
    const std::vector<swp::EncryptedDocument>& docs,
    const std::string& attribute, const rel::Value& value) const {
  DBPH_ASSIGN_OR_RETURN(
      rel::ExactMatch predicate,
      rel::MakeExactMatch(mapper_.schema(), attribute, value));
  rel::Relation out("result", mapper_.schema());
  for (const auto& doc : docs) {
    DBPH_ASSIGN_OR_RETURN(rel::Tuple tuple, DecryptTuple(doc));
    if (predicate.Evaluate(tuple)) {
      DBPH_RETURN_IF_ERROR(out.Insert(std::move(tuple)));
    }
    // else: an SWP false positive — silently dropped, per the paper.
  }
  return out;
}

std::vector<size_t> ExecuteSelect(const EncryptedRelation& relation,
                                  const EncryptedQuery& query) {
  swp::SwpParams params;
  params.word_length = query.trapdoor.target.size();
  params.check_length = relation.check_length;
  std::vector<size_t> matches;
  for (size_t i = 0; i < relation.documents.size(); ++i) {
    if (!swp::SearchDocument(params, query.trapdoor, relation.documents[i])
             .empty()) {
      matches.push_back(i);
    }
  }
  return matches;
}

std::vector<size_t> ExecuteConjunction(const EncryptedRelation& relation,
                                       const EncryptedConjunction& query) {
  std::vector<size_t> matches;
  for (size_t i = 0; i < relation.documents.size(); ++i) {
    bool all = true;
    for (const auto& trapdoor : query.trapdoors) {
      swp::SwpParams params;
      params.word_length = trapdoor.target.size();
      params.check_length = relation.check_length;
      if (swp::SearchDocument(params, trapdoor, relation.documents[i])
              .empty()) {
        all = false;
        break;
      }
    }
    if (all) matches.push_back(i);
  }
  return matches;
}

Bytes GenerateMasterKey(crypto::Rng* rng, size_t bytes) {
  return rng->NextBytes(bytes);
}

}  // namespace core
}  // namespace dbph
