#include "dbph/attribute_id.h"

#include <cctype>
#include <set>

namespace dbph {
namespace core {

namespace {

std::string Base26(size_t index, size_t width) {
  std::string out(width, 'A');
  for (size_t pos = width; pos > 0 && index > 0; --pos) {
    out[pos - 1] = static_cast<char>('A' + index % 26);
    index /= 26;
  }
  return out;
}

}  // namespace

Result<AttributeIds> AttributeIds::Derive(const rel::Schema& schema) {
  AttributeIds result;
  const size_t n = schema.num_attributes();

  // Paper convention: capitalized first letters, when unique.
  std::set<std::string> seen;
  bool unique = true;
  std::vector<std::string> letters;
  for (size_t i = 0; i < n; ++i) {
    char c = schema.attribute(i).name[0];
    std::string id(1, static_cast<char>(std::toupper(
                          static_cast<unsigned char>(c))));
    if (!std::isalpha(static_cast<unsigned char>(id[0])) ||
        !seen.insert(id).second) {
      unique = false;
      break;
    }
    letters.push_back(id);
  }
  if (unique) {
    result.ids = std::move(letters);
    result.id_length = 1;
    return result;
  }

  // Fallback: fixed-width base-26 index codes.
  size_t width = 1;
  size_t capacity = 26;
  while (capacity < n) {
    ++width;
    capacity *= 26;
  }
  result.id_length = width;
  result.ids.reserve(n);
  for (size_t i = 0; i < n; ++i) result.ids.push_back(Base26(i, width));
  return result;
}

Result<size_t> AttributeIds::IndexOf(const std::string& id) const {
  for (size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] == id) return i;
  }
  return Status::NotFound("unknown attribute id '" + id + "'");
}

}  // namespace core
}  // namespace dbph
