#include "dbph/document.h"

#include <algorithm>
#include <optional>
#include <set>

#include "common/macros.h"

namespace dbph {
namespace core {

Result<DocumentMapper> DocumentMapper::Create(const rel::Schema& schema,
                                              bool variable_length) {
  DBPH_ASSIGN_OR_RETURN(AttributeIds ids, AttributeIds::Derive(schema));

  std::vector<size_t> lengths(schema.num_attributes());
  if (variable_length) {
    for (size_t i = 0; i < schema.num_attributes(); ++i) {
      lengths[i] = schema.attribute(i).max_length + ids.id_length;
    }
  } else {
    // The paper's rule: the globally fixed word length is the length of
    // the longest attribute value plus the attribute-id length.
    size_t global = schema.MaxValueLength() + ids.id_length;
    std::fill(lengths.begin(), lengths.end(), global);
  }
  for (size_t len : lengths) {
    if (len < 2) {
      return Status::InvalidArgument(
          "word length below 2 (attribute too short for the PRP)");
    }
  }
  return DocumentMapper(schema, std::move(ids), std::move(lengths),
                        variable_length);
}

std::vector<size_t> DocumentMapper::DistinctWordLengths() const {
  std::set<size_t> set(word_lengths_.begin(), word_lengths_.end());
  return std::vector<size_t>(set.begin(), set.end());
}

Result<Bytes> DocumentMapper::MakeWord(size_t attr,
                                       const rel::Value& value) const {
  if (attr >= schema_.num_attributes()) {
    return Status::InvalidArgument("attribute index out of range");
  }
  if (value.type() != schema_.attribute(attr).type) {
    return Status::InvalidArgument("value type does not match attribute '" +
                                   schema_.attribute(attr).name + "'");
  }
  std::string encoded = value.EncodeForWord();
  if (encoded.find(kPad) != std::string::npos) {
    return Status::InvalidArgument(
        "value contains the padding symbol '#' and cannot be encoded "
        "unambiguously");
  }
  const size_t value_field = word_lengths_[attr] - ids_.id_length;
  if (encoded.size() > value_field) {
    return Status::OutOfRange("value '" + encoded +
                              "' exceeds the word's value field");
  }
  std::string word = encoded;
  word.append(value_field - encoded.size(), kPad);
  word += ids_.ids[attr];
  return ToBytes(word);
}

Result<std::pair<size_t, rel::Value>> DocumentMapper::ParseWord(
    const Bytes& word) const {
  if (word.size() <= ids_.id_length) {
    return Status::InvalidArgument("word too short to carry an id");
  }
  std::string text = ToString(word);
  std::string id = text.substr(text.size() - ids_.id_length);
  DBPH_ASSIGN_OR_RETURN(size_t attr, ids_.IndexOf(id));
  if (word.size() != word_lengths_[attr]) {
    return Status::InvalidArgument("word length does not match attribute '" +
                                   schema_.attribute(attr).name + "'");
  }
  std::string payload = text.substr(0, text.size() - ids_.id_length);
  size_t end = payload.find_last_not_of(kPad);
  payload = (end == std::string::npos) ? "" : payload.substr(0, end + 1);
  DBPH_ASSIGN_OR_RETURN(
      rel::Value value,
      rel::Value::Parse(schema_.attribute(attr).type, payload));
  return std::make_pair(attr, std::move(value));
}

Result<std::vector<Bytes>> DocumentMapper::MakeDocument(
    const rel::Tuple& tuple) const {
  DBPH_RETURN_IF_ERROR(schema_.ValidateTuple(tuple.values()));
  std::vector<Bytes> words;
  words.reserve(tuple.size());
  for (size_t i = 0; i < tuple.size(); ++i) {
    DBPH_ASSIGN_OR_RETURN(Bytes word, MakeWord(i, tuple.at(i)));
    words.push_back(std::move(word));
  }
  return words;
}

Result<rel::Tuple> DocumentMapper::ReassembleTuple(
    const std::vector<Bytes>& words) const {
  if (words.size() != schema_.num_attributes()) {
    return Status::InvalidArgument("document has wrong number of words");
  }
  std::vector<std::optional<rel::Value>> slots(schema_.num_attributes());
  for (const Bytes& word : words) {
    DBPH_ASSIGN_OR_RETURN(auto parsed, ParseWord(word));
    auto& [attr, value] = parsed;
    if (slots[attr].has_value()) {
      return Status::DataLoss("duplicate attribute id in document");
    }
    slots[attr] = std::move(value);
  }
  std::vector<rel::Value> values;
  values.reserve(slots.size());
  for (auto& slot : slots) {
    if (!slot.has_value()) {
      return Status::DataLoss("attribute missing from document");
    }
    values.push_back(std::move(*slot));
  }
  return rel::Tuple(std::move(values));
}

}  // namespace core
}  // namespace dbph
