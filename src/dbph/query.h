#ifndef DBPH_DBPH_QUERY_H_
#define DBPH_DBPH_QUERY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relation/value.h"
#include "swp/scheme.h"

namespace dbph {
namespace core {

/// \brief A plaintext exact-select query σ_{attribute:value} on a named
/// relation — the σ_i of Definition 1.1.
struct SelectQuery {
  std::string relation;
  std::string attribute;
  rel::Value value;
};

/// \brief Eq_k(σ): the encrypted query ψ the server executes. It carries
/// only the search trapdoor ϕ_{toString(value)|attribute_id}; with the
/// final SWP scheme neither the attribute nor the value is recoverable
/// from it.
struct EncryptedQuery {
  std::string relation;
  swp::Trapdoor trapdoor;

  void AppendTo(Bytes* out) const;
  static Result<EncryptedQuery> ReadFrom(ByteReader* reader);
};

/// \brief Conjunctive extension: one trapdoor per term; the server
/// intersects per-term match sets (or the client does, to hide the
/// combination).
struct EncryptedConjunction {
  std::string relation;
  std::vector<swp::Trapdoor> trapdoors;
};

}  // namespace core
}  // namespace dbph

#endif  // DBPH_DBPH_QUERY_H_
