#ifndef DBPH_DBPH_DOCUMENT_H_
#define DBPH_DBPH_DOCUMENT_H_

#include <utility>
#include <vector>

#include "common/result.h"
#include "dbph/attribute_id.h"
#include "relation/schema.h"
#include "relation/tuple.h"

namespace dbph {
namespace core {

/// \brief The tuple <-> document bijection of the paper's Section 3.
///
/// A tuple maps to a *set of words*, one per attribute:
///
///   word = value-encoding | '#'-padding | attribute-id
///
/// e.g. <name:"Montgomery", dept:"HR", sal:7500> becomes
/// {"MontgomeryN", "HR########D", "7500######S"}.
///
/// In fixed mode every word has the same globally fixed length: the
/// longest attribute value plus the id length (the paper's rule). In
/// variable mode (the full-version optimization) each attribute's words
/// are only as long as that attribute requires — smaller ciphertexts at
/// the cost of leaking which attribute a word slot belongs to through its
/// length class.
class DocumentMapper {
 public:
  static constexpr char kPad = '#';

  static Result<DocumentMapper> Create(const rel::Schema& schema,
                                       bool variable_length = false);

  const rel::Schema& schema() const { return schema_; }
  const AttributeIds& ids() const { return ids_; }
  bool variable_length() const { return variable_length_; }

  /// Word length used for attribute `attr`.
  size_t WordLengthFor(size_t attr) const { return word_lengths_[attr]; }

  /// All distinct word lengths in use (one element in fixed mode).
  std::vector<size_t> DistinctWordLengths() const;

  /// Builds the padded word for (attribute, value). Rejects values whose
  /// encoding contains the padding symbol '#' (it would make the encoding
  /// ambiguous) and values that exceed the attribute's length.
  Result<Bytes> MakeWord(size_t attr, const rel::Value& value) const;

  /// Inverts MakeWord: reads the id suffix, strips padding, parses the
  /// value with the attribute's type.
  Result<std::pair<size_t, rel::Value>> ParseWord(const Bytes& word) const;

  /// Maps a whole tuple to its document (one word per attribute, in
  /// schema order — the caller shuffles for set semantics).
  Result<std::vector<Bytes>> MakeDocument(const rel::Tuple& tuple) const;

  /// Rebuilds a tuple from decrypted words in any order. Fails when an
  /// attribute is missing or duplicated.
  Result<rel::Tuple> ReassembleTuple(const std::vector<Bytes>& words) const;

 private:
  DocumentMapper(rel::Schema schema, AttributeIds ids,
                 std::vector<size_t> word_lengths, bool variable_length)
      : schema_(std::move(schema)),
        ids_(std::move(ids)),
        word_lengths_(std::move(word_lengths)),
        variable_length_(variable_length) {}

  rel::Schema schema_;
  AttributeIds ids_;
  std::vector<size_t> word_lengths_;
  bool variable_length_;
};

}  // namespace core
}  // namespace dbph

#endif  // DBPH_DBPH_DOCUMENT_H_
