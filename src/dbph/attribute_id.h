#ifndef DBPH_DBPH_ATTRIBUTE_ID_H_
#define DBPH_DBPH_ATTRIBUTE_ID_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relation/schema.h"

namespace dbph {
namespace core {

/// \brief Fixed-length attribute identifiers appended to every word.
///
/// The paper's Emp example tags words with "N", "D", "S" — the capitalized
/// first letter of the attribute name. The identifier is *required for
/// decryption*: documents are sets, so after decrypting a word the client
/// recovers which attribute it belongs to from this suffix.
///
/// Generation rule: use the upper-cased first letter of each attribute
/// name when those are unique (the paper's convention); otherwise fall
/// back to fixed-width base-26 codes ("AA", "AB", ...) of the attribute
/// index. All identifiers of a schema share one length.
struct AttributeIds {
  std::vector<std::string> ids;
  size_t id_length = 1;

  static Result<AttributeIds> Derive(const rel::Schema& schema);

  /// Index of the attribute with this id; kNotFound for unknown ids.
  Result<size_t> IndexOf(const std::string& id) const;
};

}  // namespace core
}  // namespace dbph

#endif  // DBPH_DBPH_ATTRIBUTE_ID_H_
