#include "dbph/encrypted_relation.h"

#include <algorithm>

#include "common/macros.h"

namespace dbph {
namespace core {

void EncryptedRelation::AppendTo(Bytes* out) const {
  AppendLengthPrefixed(out, ToBytes(name));
  AppendUint32(out, check_length);
  AppendUint32(out, static_cast<uint32_t>(documents.size()));
  for (const auto& doc : documents) doc.AppendTo(out);
}

Result<EncryptedRelation> EncryptedRelation::ReadFrom(ByteReader* reader) {
  EncryptedRelation rel;
  DBPH_ASSIGN_OR_RETURN(Bytes name, reader->ReadLengthPrefixed());
  rel.name = ToString(name);
  DBPH_ASSIGN_OR_RETURN(rel.check_length, reader->ReadUint32());
  DBPH_ASSIGN_OR_RETURN(rel.documents, swp::ReadDocumentList(reader));
  return rel;
}

size_t EncryptedRelation::CiphertextBytes() const {
  size_t total = 0;
  for (const auto& doc : documents) {
    total += doc.nonce.size() + doc.tag.size();
    for (const auto& w : doc.words) total += w.size();
  }
  return total;
}

}  // namespace core
}  // namespace dbph
