#ifndef DBPH_CRYPTO_HKDF_H_
#define DBPH_CRYPTO_HKDF_H_

#include <string>

#include "common/bytes.h"

namespace dbph {
namespace crypto {

/// \brief HKDF-SHA256 extract step (RFC 5869 §2.2).
Bytes HkdfExtract(const Bytes& salt, const Bytes& ikm);

/// \brief HKDF-SHA256 expand step (RFC 5869 §2.3). `out_len` <= 255*32.
Bytes HkdfExpand(const Bytes& prk, const Bytes& info, size_t out_len);

/// \brief Full extract-then-expand.
Bytes Hkdf(const Bytes& salt, const Bytes& ikm, const Bytes& info,
           size_t out_len);

/// \brief Derives a labelled subkey from a master key. This is how the
/// database PH splits its master key into independent keys for the
/// pre-encryption PRP, the word-key PRF, the stream generator and the
/// tuple-permutation (see dbph/keys.h).
Bytes DeriveSubkey(const Bytes& master, const std::string& label,
                   size_t out_len = 32);

}  // namespace crypto
}  // namespace dbph

#endif  // DBPH_CRYPTO_HKDF_H_
