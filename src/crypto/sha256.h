#ifndef DBPH_CRYPTO_SHA256_H_
#define DBPH_CRYPTO_SHA256_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/bytes.h"
#include "crypto/sha256_compress.h"

namespace dbph {
namespace crypto {

/// \brief Incremental SHA-256 (FIPS 180-4).
///
/// The implementation is self-contained (no OpenSSL dependency) so the whole
/// cryptographic stack of the library is auditable and deterministic across
/// platforms. Verified against the NIST FIPS 180-4 test vectors (see
/// tests/crypto_sha256_test.cc). Block compression goes through the
/// runtime-dispatched kernel in crypto/sha256_compress.h, so every digest
/// in the system (Merkle trees, HMAC, the scan kernel) shares one
/// hardware-accelerated implementation.
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256();

  /// Absorbs `data` into the hash state.
  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }

  /// Finalizes and returns the 32-byte digest. The object must not be
  /// reused afterwards without calling Reset().
  Bytes Finish();

  /// Finish() without the heap: writes the digest into `out`.
  void FinishInto(uint8_t out[kDigestSize]);

  /// Restores the pristine state.
  void Reset();

  /// \brief The current chaining state. Only meaningful on a block
  /// boundary (bytes_buffered() == 0); a midstate captured there can be
  /// cloned into any number of FromMidstate() hashers that each continue
  /// with a different suffix — HMAC's precomputed ipad/opad states are
  /// exactly this.
  const Sha256State& midstate() const { return state_; }
  size_t bytes_buffered() const { return buffer_len_; }

  /// \brief A hasher resumed from a cloned midstate, as if it had already
  /// absorbed `prefix_bytes` bytes (must be a multiple of kBlockSize).
  static Sha256 FromMidstate(const Sha256State& midstate,
                             uint64_t prefix_bytes);

  /// One-shot convenience: SHA-256(data).
  static Bytes Hash(const Bytes& data);

 private:
  Sha256State state_;
  std::array<uint8_t, kBlockSize> buffer_;
  size_t buffer_len_;
  uint64_t total_len_;
};

}  // namespace crypto
}  // namespace dbph

#endif  // DBPH_CRYPTO_SHA256_H_
