#ifndef DBPH_CRYPTO_SHA256_H_
#define DBPH_CRYPTO_SHA256_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/bytes.h"

namespace dbph {
namespace crypto {

/// \brief Incremental SHA-256 (FIPS 180-4).
///
/// The implementation is self-contained (no OpenSSL dependency) so the whole
/// cryptographic stack of the library is auditable and deterministic across
/// platforms. Verified against the NIST FIPS 180-4 test vectors (see
/// tests/crypto_sha256_test.cc).
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256();

  /// Absorbs `data` into the hash state.
  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }

  /// Finalizes and returns the 32-byte digest. The object must not be
  /// reused afterwards without calling Reset().
  Bytes Finish();

  /// Restores the pristine state.
  void Reset();

  /// One-shot convenience: SHA-256(data).
  static Bytes Hash(const Bytes& data);

 private:
  void ProcessBlock(const uint8_t* block);

  std::array<uint32_t, 8> state_;
  std::array<uint8_t, kBlockSize> buffer_;
  size_t buffer_len_;
  uint64_t total_len_;
};

}  // namespace crypto
}  // namespace dbph

#endif  // DBPH_CRYPTO_SHA256_H_
