#ifndef DBPH_CRYPTO_CTR_H_
#define DBPH_CRYPTO_CTR_H_

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/aes.h"

namespace dbph {
namespace crypto {

/// \brief AES-CTR stream encryption (SP 800-38A).
///
/// Counter block layout: 12-byte nonce | 4-byte big-endian block counter
/// starting at 0. Encryption and decryption are the same operation.
/// This is the strong tuple cipher used by the bucketization baseline and
/// by the database PH's optional value-payload mode.
class AesCtr {
 public:
  /// `key` must be a valid AES key size; `nonce` must be 12 bytes.
  static Result<AesCtr> Create(const Bytes& key, const Bytes& nonce);

  /// XORs the keystream into `data` starting at keystream offset 0.
  Bytes Process(const Bytes& data) const;

  /// Produces `len` raw keystream bytes starting at byte `offset`.
  /// Random access is O(len) — no need to generate preceding bytes.
  Bytes Keystream(uint64_t offset, size_t len) const;

 private:
  AesCtr(Aes aes, Bytes nonce) : aes_(std::move(aes)), nonce_(std::move(nonce)) {}

  Aes aes_;
  Bytes nonce_;
};

}  // namespace crypto
}  // namespace dbph

#endif  // DBPH_CRYPTO_CTR_H_
