#include "crypto/search_tree.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"
#include "crypto/sha256.h"

namespace dbph {
namespace crypto {

namespace {

/// Domain prefixes: a tag digest can never collide with a posting
/// digest, and neither can be replayed as a document leaf (EntryLeaf
/// goes through the MerkleTree leaf domain on 64 bytes no serialized
/// document can be, but the explicit prefixes keep the separation
/// independent of that accident).
constexpr char kTagDomain[] = "dbph-search-tag-v1";
constexpr char kPostingDomain[] = "dbph-posting-list-v1";

void AppendUint64To(Sha256* hasher, uint64_t value) {
  uint8_t buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<uint8_t>(value >> (8 * i));
  hasher->Update(buf, sizeof(buf));
}

}  // namespace

SearchTree::Hash SearchTree::TagDigest(const Bytes& trapdoor_bytes) {
  Sha256 hasher;
  hasher.Update(reinterpret_cast<const uint8_t*>(kTagDomain),
                sizeof(kTagDomain) - 1);
  hasher.Update(trapdoor_bytes);
  Hash out;
  hasher.FinishInto(out.data());
  return out;
}

SearchTree::Hash SearchTree::PostingDigest(
    const std::vector<uint64_t>& positions) {
  Sha256 hasher;
  hasher.Update(reinterpret_cast<const uint8_t*>(kPostingDomain),
                sizeof(kPostingDomain) - 1);
  AppendUint64To(&hasher, positions.size());
  for (uint64_t position : positions) AppendUint64To(&hasher, position);
  Hash out;
  hasher.FinishInto(out.data());
  return out;
}

SearchTree::Hash SearchTree::EntryLeaf(const Hash& tag,
                                       const Hash& posting_digest) {
  uint8_t buf[64];
  std::copy(tag.begin(), tag.end(), buf);
  std::copy(posting_digest.begin(), posting_digest.end(), buf + 32);
  return MerkleTree::LeafHash(buf, sizeof(buf));
}

Status SearchTree::Assign(std::vector<Entry> entries,
                          uint64_t num_positions) {
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0 && !(entries[i - 1].tag < entries[i].tag)) {
      return Status::InvalidArgument(
          "search tree: tags not strictly increasing");
    }
    const std::vector<uint64_t>& positions = entries[i].positions;
    if (positions.empty()) {
      return Status::InvalidArgument("search tree: empty posting list");
    }
    for (size_t j = 0; j < positions.size(); ++j) {
      if (positions[j] >= num_positions ||
          (j > 0 && positions[j] <= positions[j - 1])) {
        return Status::InvalidArgument(
            "search tree: posting positions not increasing in range");
      }
    }
  }
  entries_ = std::move(entries);
  Rebuild();
  return Status::OK();
}

Status SearchTree::ApplyAppendDelta(const std::vector<Entry>& delta,
                                    uint64_t begin_position,
                                    uint64_t end_position) {
  // Validate everything first: a rejected delta must leave the committed
  // state untouched (the caller has not applied the append either).
  for (size_t i = 0; i < delta.size(); ++i) {
    if (i > 0 && !(delta[i - 1].tag < delta[i].tag)) {
      return Status::InvalidArgument(
          "search delta: tags not strictly increasing");
    }
    const std::vector<uint64_t>& positions = delta[i].positions;
    if (positions.empty()) {
      return Status::InvalidArgument("search delta: empty posting list");
    }
    for (size_t j = 0; j < positions.size(); ++j) {
      if (positions[j] < begin_position || positions[j] >= end_position ||
          (j > 0 && positions[j] <= positions[j - 1])) {
        return Status::InvalidArgument(
            "search delta: positions not increasing in the appended range");
      }
    }
  }

  // Sorted merge; appended positions are all >= begin_position and every
  // committed position is below it (the invariant Assign enforces and
  // ApplyDelete preserves), so a merged list stays strictly increasing.
  std::vector<Entry> merged;
  merged.reserve(entries_.size() + delta.size());
  size_t a = 0;
  size_t b = 0;
  while (a < entries_.size() || b < delta.size()) {
    if (b == delta.size() ||
        (a < entries_.size() && entries_[a].tag < delta[b].tag)) {
      merged.push_back(std::move(entries_[a++]));
    } else if (a == entries_.size() || delta[b].tag < entries_[a].tag) {
      merged.push_back(delta[b++]);
    } else {
      Entry entry = std::move(entries_[a++]);
      entry.positions.insert(entry.positions.end(),
                             delta[b].positions.begin(),
                             delta[b].positions.end());
      merged.push_back(std::move(entry));
      ++b;
    }
  }
  entries_ = std::move(merged);
  Rebuild();
  return Status::OK();
}

void SearchTree::ApplyDelete(const std::vector<uint64_t>& removed_positions) {
  if (removed_positions.empty()) return;
  std::vector<Entry> kept;
  kept.reserve(entries_.size());
  for (Entry& entry : entries_) {
    std::vector<uint64_t> survivors;
    survivors.reserve(entry.positions.size());
    for (uint64_t position : entry.positions) {
      auto it = std::lower_bound(removed_positions.begin(),
                                 removed_positions.end(), position);
      if (it != removed_positions.end() && *it == position) continue;
      // Shift down by the number of removed positions below this one.
      survivors.push_back(position - static_cast<uint64_t>(
                                         it - removed_positions.begin()));
    }
    if (survivors.empty()) continue;
    entry.positions = std::move(survivors);
    kept.push_back(std::move(entry));
  }
  entries_ = std::move(kept);
  Rebuild();
}

void SearchTree::Clear() {
  entries_.clear();
  tree_.Clear();
}

size_t SearchTree::LowerBound(const Hash& tag) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), tag,
      [](const Entry& entry, const Hash& t) { return entry.tag < t; });
  return static_cast<size_t>(it - entries_.begin());
}

const SearchTree::Entry* SearchTree::Find(const Hash& tag) const {
  size_t index = LowerBound(tag);
  if (index < entries_.size() && entries_[index].tag == tag) {
    return &entries_[index];
  }
  return nullptr;
}

std::vector<SearchTree::Hash> SearchTree::MembershipPath(size_t index) const {
  return tree_.InclusionProof(index);
}

std::vector<SearchTree::Neighbor> SearchTree::NonMembershipProof(
    const Hash& tag) const {
  std::vector<Neighbor> neighbors;
  if (entries_.empty()) return neighbors;
  size_t index = LowerBound(tag);
  if (index < entries_.size() && entries_[index].tag == tag) {
    // Present: there is no honest non-membership proof. Return the empty
    // set, which VerifyNonMember rejects for a non-empty tree.
    return neighbors;
  }
  const auto make = [&](size_t i) {
    Neighbor neighbor;
    neighbor.index = i;
    neighbor.tag = entries_[i].tag;
    neighbor.posting_digest = PostingDigest(entries_[i].positions);
    neighbor.path = tree_.InclusionProof(i);
    return neighbor;
  };
  if (index == 0) {
    neighbors.push_back(make(0));
  } else if (index == entries_.size()) {
    neighbors.push_back(make(entries_.size() - 1));
  } else {
    neighbors.push_back(make(index - 1));
    neighbors.push_back(make(index));
  }
  return neighbors;
}

Status SearchTree::VerifyMember(const Hash& root, uint64_t tree_size,
                                uint64_t index, const Hash& tag,
                                const Hash& posting_digest,
                                const std::vector<Hash>& path) {
  return MerkleTree::VerifyInclusion(root, tree_size, index,
                                     EntryLeaf(tag, posting_digest), path);
}

Status SearchTree::VerifyNonMember(const Hash& root, uint64_t tree_size,
                                   const Hash& tag,
                                   const std::vector<Neighbor>& neighbors) {
  if (tree_size == 0) {
    // An empty tree commits to nothing, but tree_size itself is wire
    // data the owner never signed — only the root is. Demand the root
    // actually be the empty-tree constant, or a server could replay a
    // genuinely signed non-empty root with tree_size=0 and pass off
    // "no committed matches" for any tag.
    if (root != MerkleTree::EmptyRoot()) {
      return Status::DataLoss(
          "non-membership: tree_size=0 against a non-empty root");
    }
    if (!neighbors.empty()) {
      return Status::DataLoss("non-membership: neighbors for an empty tree");
    }
    return Status::OK();
  }
  const auto verify_neighbor = [&](const Neighbor& neighbor) {
    return MerkleTree::VerifyInclusion(
        root, tree_size, neighbor.index,
        EntryLeaf(neighbor.tag, neighbor.posting_digest), neighbor.path);
  };
  if (neighbors.size() == 1) {
    const Neighbor& boundary = neighbors[0];
    DBPH_RETURN_IF_ERROR(verify_neighbor(boundary));
    const bool before_first = boundary.index == 0 && tag < boundary.tag;
    const bool after_last =
        boundary.index + 1 == tree_size && boundary.tag < tag;
    if (!before_first && !after_last) {
      return Status::DataLoss("non-membership: tag not outside the boundary");
    }
    return Status::OK();
  }
  if (neighbors.size() == 2) {
    const Neighbor& low = neighbors[0];
    const Neighbor& high = neighbors[1];
    if (low.index + 1 != high.index) {
      return Status::DataLoss("non-membership: neighbors not adjacent");
    }
    if (!(low.tag < tag) || !(tag < high.tag)) {
      return Status::DataLoss("non-membership: tag not between neighbors");
    }
    DBPH_RETURN_IF_ERROR(verify_neighbor(low));
    DBPH_RETURN_IF_ERROR(verify_neighbor(high));
    return Status::OK();
  }
  return Status::DataLoss("non-membership: wrong neighbor count");
}

void SearchTree::Rebuild() {
  std::vector<Hash> leaves;
  leaves.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    leaves.push_back(EntryLeaf(entry.tag, PostingDigest(entry.positions)));
  }
  tree_.Assign(std::move(leaves));
}

}  // namespace crypto
}  // namespace dbph
