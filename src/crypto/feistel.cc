#include "crypto/feistel.h"

#include "crypto/hmac.h"

namespace dbph {
namespace crypto {

Bytes FeistelPrp::RoundValue(int round, const Bytes& half,
                             size_t out_len) const {
  Bytes input;
  input.reserve(half.size() + 4);
  AppendUint32(&input, static_cast<uint32_t>(round));
  input.insert(input.end(), half.begin(), half.end());
  return HmacSha256Expand(key_, input, out_len);
}

Result<Bytes> FeistelPrp::Encrypt(const Bytes& in) const {
  if (in.size() < 2) {
    return Status::InvalidArgument("FeistelPrp needs at least 2 bytes");
  }
  size_t l_len = in.size() / 2;
  Bytes left(in.begin(), in.begin() + static_cast<long>(l_len));
  Bytes right(in.begin() + static_cast<long>(l_len), in.end());

  for (int round = 0; round < kRounds; ++round) {
    if (round % 2 == 0) {
      Bytes f = RoundValue(round, left, right.size());
      XorInPlace(&right, f);
    } else {
      Bytes f = RoundValue(round, right, left.size());
      XorInPlace(&left, f);
    }
  }
  return Concat(left, right);
}

Result<Bytes> FeistelPrp::Decrypt(const Bytes& in) const {
  if (in.size() < 2) {
    return Status::InvalidArgument("FeistelPrp needs at least 2 bytes");
  }
  size_t l_len = in.size() / 2;
  Bytes left(in.begin(), in.begin() + static_cast<long>(l_len));
  Bytes right(in.begin() + static_cast<long>(l_len), in.end());

  for (int round = kRounds - 1; round >= 0; --round) {
    if (round % 2 == 0) {
      Bytes f = RoundValue(round, left, right.size());
      XorInPlace(&right, f);
    } else {
      Bytes f = RoundValue(round, right, left.size());
      XorInPlace(&left, f);
    }
  }
  return Concat(left, right);
}

}  // namespace crypto
}  // namespace dbph
