#ifndef DBPH_CRYPTO_RANDOM_H_
#define DBPH_CRYPTO_RANDOM_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/bytes.h"

namespace dbph {
namespace crypto {

/// \brief Source of (pseudo)random bytes.
///
/// Every randomized component of the library draws from an explicit Rng so
/// experiments are exactly reproducible: the game harnesses and benchmark
/// drivers construct seeded DRBGs, while production callers may use
/// SystemRng.
class Rng {
 public:
  virtual ~Rng() = default;

  /// Fills `out` with `len` random bytes.
  virtual void Fill(uint8_t* out, size_t len) = 0;

  Bytes NextBytes(size_t len) {
    Bytes out(len);
    Fill(out.data(), len);
    return out;
  }

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform value in [0, bound) using rejection sampling (no modulo bias).
  uint64_t NextBelow(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Fair coin.
  bool NextBool() { return (NextUint64() & 1) != 0; }
};

/// \brief Deterministic HMAC-DRBG (NIST SP 800-90A, HMAC-SHA256 variant).
///
/// Instantiated from a seed; same seed => same stream on every platform.
class HmacDrbg : public Rng {
 public:
  explicit HmacDrbg(const Bytes& seed);

  /// Convenience: seeds from a human-readable label plus a numeric seed —
  /// the pattern used by the experiment harnesses.
  HmacDrbg(const std::string& label, uint64_t seed);

  void Fill(uint8_t* out, size_t len) override;

  /// Mixes additional entropy/material into the state.
  void Reseed(const Bytes& material);

 private:
  void Update(const Bytes& provided);

  Bytes key_;  // K
  Bytes v_;    // V
};

/// \brief OS entropy source (/dev/urandom).
class SystemRng : public Rng {
 public:
  void Fill(uint8_t* out, size_t len) override;
};

/// \brief Returns a process-wide SystemRng.
Rng& DefaultRng();

}  // namespace crypto
}  // namespace dbph

#endif  // DBPH_CRYPTO_RANDOM_H_
