#include "crypto/hmac.h"

#include "crypto/sha256.h"

namespace dbph {
namespace crypto {

Bytes HmacSha256(const Bytes& key, const Bytes& message) {
  constexpr size_t kBlock = Sha256::kBlockSize;

  Bytes k = key;
  if (k.size() > kBlock) k = Sha256::Hash(k);
  k.resize(kBlock, 0x00);

  Bytes ipad(kBlock), opad(kBlock);
  for (size_t i = 0; i < kBlock; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ipad);
  inner.Update(message);
  Bytes inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(opad);
  outer.Update(inner_digest);
  return outer.Finish();
}

Bytes HmacSha256Expand(const Bytes& key, const Bytes& message,
                       size_t out_len) {
  Bytes out;
  out.reserve(out_len);
  uint32_t counter = 0;
  while (out.size() < out_len) {
    Bytes block_input = message;
    AppendUint32(&block_input, counter++);
    Bytes t = HmacSha256(key, block_input);
    size_t take = std::min(t.size(), out_len - out.size());
    out.insert(out.end(), t.begin(), t.begin() + static_cast<long>(take));
  }
  return out;
}

}  // namespace crypto
}  // namespace dbph
