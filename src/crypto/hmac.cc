#include "crypto/hmac.h"

#include <algorithm>
#include <cstring>

namespace dbph {
namespace crypto {

namespace {

constexpr size_t kBlock = Sha256::kBlockSize;

void StoreDigestBE(const Sha256State& state, uint8_t out[32]) {
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<uint8_t>(state[i] >> 24);
    out[4 * i + 1] = static_cast<uint8_t>(state[i] >> 16);
    out[4 * i + 2] = static_cast<uint8_t>(state[i] >> 8);
    out[4 * i + 3] = static_cast<uint8_t>(state[i]);
  }
}

/// Absorbs `len` trailing message bytes into `state` (which has already
/// compressed `prefix_bytes` whole blocks' worth of input), applies the
/// FIPS 180-4 padding and writes the big-endian digest — all on the
/// stack, no allocations.
void FinishAbsorb(Sha256State* state, const uint8_t* data, size_t len,
                  uint64_t prefix_bytes, uint8_t out[32]) {
  const uint64_t total_bits = (prefix_bytes + len) * 8;
  while (len >= kBlock) {
    Sha256Compress(state, data);
    data += kBlock;
    len -= kBlock;
  }
  uint8_t block[kBlock];
  std::memcpy(block, data, len);
  block[len] = 0x80;
  if (len + 9 > kBlock) {
    // The length field does not fit: one padding-only extra block.
    std::memset(block + len + 1, 0, kBlock - len - 1);
    Sha256Compress(state, block);
    std::memset(block, 0, kBlock - 8);
  } else {
    std::memset(block + len + 1, 0, kBlock - 8 - len - 1);
  }
  for (int i = 0; i < 8; ++i) {
    block[kBlock - 8 + i] = static_cast<uint8_t>(total_bits >> (56 - 8 * i));
  }
  Sha256Compress(state, block);
  StoreDigestBE(*state, out);
}

}  // namespace

HmacSha256Precomputed::HmacSha256Precomputed(const Bytes& key) {
  uint8_t k[kBlock] = {0};
  if (key.size() > kBlock) {
    Sha256 h;
    h.Update(key);
    h.FinishInto(k);  // 32 digest bytes, rest stays zero
  } else {
    std::memcpy(k, key.data(), key.size());
  }
  uint8_t pad[kBlock];
  for (size_t i = 0; i < kBlock; ++i) pad[i] = k[i] ^ 0x36;
  inner_ = Sha256InitialState();
  Sha256Compress(&inner_, pad);
  for (size_t i = 0; i < kBlock; ++i) pad[i] = k[i] ^ 0x5c;
  outer_ = Sha256InitialState();
  Sha256Compress(&outer_, pad);
}

void HmacSha256Precomputed::Eval(const uint8_t* msg, size_t len,
                                 uint8_t out[kDigestSize]) const {
  uint8_t inner_digest[kDigestSize];
  Sha256State state = inner_;
  FinishAbsorb(&state, msg, len, kBlock, inner_digest);
  state = outer_;
  FinishAbsorb(&state, inner_digest, kDigestSize, kBlock, out);
}

Bytes HmacSha256Precomputed::Eval(const Bytes& msg) const {
  Bytes out(kDigestSize);
  Eval(msg.data(), msg.size(), out.data());
  return out;
}

void HmacSha256Precomputed::EvalMany(const uint8_t* const* msgs,
                                     size_t msg_len, size_t n,
                                     uint8_t* out) const {
  constexpr size_t kLanes = 8;
  // Inner hash: the ipad block (already in the midstate) followed by the
  // message and padding; all lanes share one block count because the
  // messages share one length.
  const size_t inner_blocks = (msg_len + 9 + kBlock - 1) / kBlock;
  const uint64_t inner_bits = (kBlock + msg_len) * 8;
  const uint64_t outer_bits = (kBlock + kDigestSize) * 8;

  for (size_t base = 0; base < n; base += kLanes) {
    const size_t lanes = std::min(kLanes, n - base);
    Sha256State states[kLanes];
    for (size_t l = 0; l < lanes; ++l) states[l] = inner_;

    uint8_t scratch[kLanes][kBlock];
    const uint8_t* blocks[kLanes];
    for (size_t b = 0; b < inner_blocks; ++b) {
      const size_t off = b * kBlock;
      if (off + kBlock <= msg_len) {
        // Whole block inside the message: compress straight from it.
        for (size_t l = 0; l < lanes; ++l) blocks[l] = msgs[base + l] + off;
      } else {
        const size_t take = msg_len > off ? msg_len - off : 0;
        for (size_t l = 0; l < lanes; ++l) {
          uint8_t* buf = scratch[l];
          std::memcpy(buf, msgs[base + l] + off, take);
          std::memset(buf + take, 0, kBlock - take);
          if (msg_len >= off && msg_len < off + kBlock) {
            buf[msg_len - off] = 0x80;
          }
          if (b == inner_blocks - 1) {
            for (int i = 0; i < 8; ++i) {
              buf[kBlock - 8 + i] =
                  static_cast<uint8_t>(inner_bits >> (56 - 8 * i));
            }
          }
          blocks[l] = buf;
        }
      }
      Sha256CompressMany(states, blocks, lanes);
    }

    // Outer hash: opad midstate + the 32-byte inner digest; digest,
    // 0x80 and the length field all fit one block.
    for (size_t l = 0; l < lanes; ++l) {
      uint8_t* buf = scratch[l];
      StoreDigestBE(states[l], buf);
      buf[kDigestSize] = 0x80;
      std::memset(buf + kDigestSize + 1, 0, kBlock - 8 - kDigestSize - 1);
      for (int i = 0; i < 8; ++i) {
        buf[kBlock - 8 + i] = static_cast<uint8_t>(outer_bits >> (56 - 8 * i));
      }
      blocks[l] = buf;
      states[l] = outer_;
    }
    Sha256CompressMany(states, blocks, lanes);
    for (size_t l = 0; l < lanes; ++l) {
      StoreDigestBE(states[l], out + (base + l) * kDigestSize);
    }
  }
}

void HmacSha256Stream::UpdateUint32(uint32_t v) {
  uint8_t be[4] = {static_cast<uint8_t>(v >> 24), static_cast<uint8_t>(v >> 16),
                   static_cast<uint8_t>(v >> 8), static_cast<uint8_t>(v)};
  inner_.Update(be, 4);
}

void HmacSha256Stream::FinishInto(
    uint8_t out[HmacSha256Precomputed::kDigestSize]) {
  uint8_t inner_digest[HmacSha256Precomputed::kDigestSize];
  inner_.FinishInto(inner_digest);
  Sha256State state = schedule_->outer_midstate();
  FinishAbsorb(&state, inner_digest, HmacSha256Precomputed::kDigestSize,
               kBlock, out);
}

Bytes HmacSha256Stream::Finish() {
  Bytes out(HmacSha256Precomputed::kDigestSize);
  FinishInto(out.data());
  return out;
}

void HmacSha256Stream::Reset() {
  inner_ = Sha256::FromMidstate(schedule_->inner_midstate(), kBlock);
}

Bytes HmacSha256(const Bytes& key, const Bytes& message) {
  HmacSha256Precomputed schedule(key);
  Bytes out(Sha256::kDigestSize);
  schedule.Eval(message.data(), message.size(), out.data());
  return out;
}

Bytes HmacSha256Expand(const Bytes& key, const Bytes& message,
                       size_t out_len) {
  HmacSha256Precomputed schedule(key);
  Bytes out;
  out.reserve(out_len);
  Bytes block_input = message;
  block_input.resize(message.size() + 4);
  uint32_t counter = 0;
  uint8_t t[Sha256::kDigestSize];
  while (out.size() < out_len) {
    uint8_t* ctr = block_input.data() + message.size();
    ctr[0] = static_cast<uint8_t>(counter >> 24);
    ctr[1] = static_cast<uint8_t>(counter >> 16);
    ctr[2] = static_cast<uint8_t>(counter >> 8);
    ctr[3] = static_cast<uint8_t>(counter);
    ++counter;
    schedule.Eval(block_input.data(), block_input.size(), t);
    size_t take = std::min<size_t>(sizeof(t), out_len - out.size());
    out.insert(out.end(), t, t + take);
  }
  return out;
}

}  // namespace crypto
}  // namespace dbph
