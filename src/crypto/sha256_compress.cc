#include "crypto/sha256_compress.h"

#include <cstdlib>
#include <cstring>
#include <string>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define DBPH_SHA256_X86 1
#include <cpuid.h>
#include <immintrin.h>
#endif

namespace dbph {
namespace crypto {

namespace {

constexpr uint32_t kInit[8] = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
};

alignas(16) constexpr uint32_t kRoundConst[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

inline uint32_t RotR(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

inline uint32_t Load32BE(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

void CompressScalar(Sha256State* state, const uint8_t* block) {
  uint32_t w[64];
  for (int i = 0; i < 16; ++i) w[i] = Load32BE(block + 4 * i);
  for (int i = 16; i < 64; ++i) {
    uint32_t s0 = RotR(w[i - 15], 7) ^ RotR(w[i - 15], 18) ^ (w[i - 15] >> 3);
    uint32_t s1 = RotR(w[i - 2], 17) ^ RotR(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  uint32_t a = (*state)[0], b = (*state)[1], c = (*state)[2], d = (*state)[3];
  uint32_t e = (*state)[4], f = (*state)[5], g = (*state)[6], h = (*state)[7];

  for (int i = 0; i < 64; ++i) {
    uint32_t s1 = RotR(e, 6) ^ RotR(e, 11) ^ RotR(e, 25);
    uint32_t ch = (e & f) ^ (~e & g);
    uint32_t temp1 = h + s1 + ch + kRoundConst[i] + w[i];
    uint32_t s0 = RotR(a, 2) ^ RotR(a, 13) ^ RotR(a, 22);
    uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }

  (*state)[0] += a;
  (*state)[1] += b;
  (*state)[2] += c;
  (*state)[3] += d;
  (*state)[4] += e;
  (*state)[5] += f;
  (*state)[6] += g;
  (*state)[7] += h;
}

#if DBPH_SHA256_X86

#define DBPH_SHA_INLINE inline __attribute__((always_inline))

// ---------------------------------------------------------------------------
// Transposed multi-way kernels (SSE4.1 x4 / AVX2 x8).
//
// GCC generic vectors keep the round function written once; the
// target-attributed wrappers below compile it for the ISA they name and
// the always_inline body inherits those registers. Lane l of every
// vector is message l, so the 64 rounds run all lanes in lockstep —
// the schedule and round math are data-independent, which also keeps
// the lanes free of cross-message timing variation.
// ---------------------------------------------------------------------------

typedef uint32_t u32x4 __attribute__((vector_size(16)));
typedef uint32_t u32x8 __attribute__((vector_size(32)));

template <typename V, int kLanes>
DBPH_SHA_INLINE void VecCompressLanes(Sha256State* states,
                                      const uint8_t* const* blocks) {
  V s[8];
  for (int i = 0; i < 8; ++i) {
    for (int l = 0; l < kLanes; ++l) s[i][l] = states[l][i];
  }
  V w[16];
  for (int i = 0; i < 16; ++i) {
    for (int l = 0; l < kLanes; ++l) w[i][l] = Load32BE(blocks[l] + 4 * i);
  }

  V a = s[0], b = s[1], c = s[2], d = s[3];
  V e = s[4], f = s[5], g = s[6], h = s[7];

  const auto rotr = [](V x, int n) __attribute__((always_inline)) {
    return (x >> n) | (x << (32 - n));
  };
  for (int i = 0; i < 64; ++i) {
    if (i >= 16) {
      // Rolling 16-entry window: w[i % 16] is W[i-16] coming in, W[i]
      // going out.
      V w15 = w[(i + 1) % 16];
      V w2 = w[(i + 14) % 16];
      V s0 = rotr(w15, 7) ^ rotr(w15, 18) ^ (w15 >> 3);
      V s1 = rotr(w2, 17) ^ rotr(w2, 19) ^ (w2 >> 10);
      w[i % 16] = w[i % 16] + s0 + w[(i + 9) % 16] + s1;
    }
    V s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    V ch = (e & f) ^ (~e & g);
    V temp1 = h + s1 + ch + kRoundConst[i] + w[i % 16];
    V s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    V maj = (a & b) ^ (a & c) ^ (b & c);
    V temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }

  s[0] += a;
  s[1] += b;
  s[2] += c;
  s[3] += d;
  s[4] += e;
  s[5] += f;
  s[6] += g;
  s[7] += h;
  for (int i = 0; i < 8; ++i) {
    for (int l = 0; l < kLanes; ++l) states[l][i] = s[i][l];
  }
}

__attribute__((target("sse4.1"))) void CompressSse41x4(
    Sha256State* states, const uint8_t* const* blocks) {
  VecCompressLanes<u32x4, 4>(states, blocks);
}

__attribute__((target("avx2"))) void CompressAvx2x8(
    Sha256State* states, const uint8_t* const* blocks) {
  VecCompressLanes<u32x8, 8>(states, blocks);
}

// ---------------------------------------------------------------------------
// SHA-NI kernel. One SHA256RNDS2 chain is latency-bound, so the N=2
// instantiation interleaves two independent streams and digests two
// blocks in roughly the wall time of one.
// ---------------------------------------------------------------------------

template <int N>
__attribute__((target("sha,ssse3,sse4.1"))) void ShaNiCompress(
    Sha256State* const* states, const uint8_t* const* blocks) {
  const __m128i kFlip =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);
  __m128i st0[N], st1[N], save0[N], save1[N], msg[N][4];
  for (int j = 0; j < N; ++j) {
    // Repack {a..h} into the ABEF / CDGH register layout SHA256RNDS2
    // expects.
    __m128i lo = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(states[j]->data()));  // a b c d
    __m128i hi = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(states[j]->data() + 4));  // e f g h
    lo = _mm_shuffle_epi32(lo, 0xB1);                              // b a d c
    hi = _mm_shuffle_epi32(hi, 0x1B);                              // h g f e
    st0[j] = _mm_alignr_epi8(lo, hi, 8);                           // f e b a
    st1[j] = _mm_blend_epi16(hi, lo, 0xF0);                        // h g d c
    save0[j] = st0[j];
    save1[j] = st1[j];
    for (int i = 0; i < 4; ++i) {
      msg[j][i] = _mm_shuffle_epi8(
          _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(blocks[j] + 16 * i)),
          kFlip);
    }
  }

  for (int i = 0; i < 16; ++i) {
    const __m128i k =
        _mm_load_si128(reinterpret_cast<const __m128i*>(kRoundConst + 4 * i));
    for (int j = 0; j < N; ++j) {
      __m128i wcur;
      if (i < 4) {
        wcur = msg[j][i];
      } else {
        // W[4i..4i+3] = MSG2(MSG1(W-16, W-12) + (W-7 slice), W-4).
        __m128i t = _mm_sha256msg1_epu32(msg[j][i % 4], msg[j][(i + 1) % 4]);
        t = _mm_add_epi32(
            t, _mm_alignr_epi8(msg[j][(i + 3) % 4], msg[j][(i + 2) % 4], 4));
        wcur = _mm_sha256msg2_epu32(t, msg[j][(i + 3) % 4]);
        msg[j][i % 4] = wcur;
      }
      __m128i wk = _mm_add_epi32(wcur, k);
      st1[j] = _mm_sha256rnds2_epu32(st1[j], st0[j], wk);
      wk = _mm_shuffle_epi32(wk, 0x0E);
      st0[j] = _mm_sha256rnds2_epu32(st0[j], st1[j], wk);
    }
  }

  for (int j = 0; j < N; ++j) {
    st0[j] = _mm_add_epi32(st0[j], save0[j]);
    st1[j] = _mm_add_epi32(st1[j], save1[j]);
    __m128i lo = _mm_shuffle_epi32(st0[j], 0x1B);   // a b e f
    __m128i hi = _mm_shuffle_epi32(st1[j], 0xB1);   // g h c d
    __m128i abcd = _mm_blend_epi16(lo, hi, 0xF0);   // a b c d
    __m128i efgh = _mm_alignr_epi8(hi, lo, 8);      // e f g h
    _mm_storeu_si128(reinterpret_cast<__m128i*>(states[j]->data()), abcd);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(states[j]->data() + 4), efgh);
  }
}

struct CpuFeatures {
  bool ssse3 = false;
  bool sse41 = false;
  bool avx2 = false;
  bool sha = false;
};

CpuFeatures DetectCpu() {
  CpuFeatures features;
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return features;
  features.ssse3 = (ecx & (1u << 9)) != 0;
  features.sse41 = (ecx & (1u << 19)) != 0;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool avx = (ecx & (1u << 28)) != 0;
  bool ymm_enabled = false;
  if (osxsave && avx) {
    // The OS must have enabled YMM state saving before AVX2 is usable.
    // Raw xgetbv: the _xgetbv intrinsic would demand -mxsave TU-wide.
    uint32_t xcr0_lo = 0, xcr0_hi = 0;
    __asm__ volatile("xgetbv" : "=a"(xcr0_lo), "=d"(xcr0_hi) : "c"(0));
    const uint64_t xcr0 = (static_cast<uint64_t>(xcr0_hi) << 32) | xcr0_lo;
    ymm_enabled = (xcr0 & 0x6) == 0x6;
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    features.avx2 = ymm_enabled && (ebx & (1u << 5)) != 0;
    features.sha = (ebx & (1u << 29)) != 0;
  }
  return features;
}

#endif  // DBPH_SHA256_X86

bool KernelSupported(Sha256Kernel kernel) {
#if DBPH_SHA256_X86
  static const CpuFeatures features = DetectCpu();
  switch (kernel) {
    case Sha256Kernel::kPortable:
      return true;
    case Sha256Kernel::kSse41:
      return features.sse41;
    case Sha256Kernel::kAvx2:
      return features.avx2;
    case Sha256Kernel::kShaNi:
      return features.sha && features.ssse3 && features.sse41;
  }
  return false;
#else
  return kernel == Sha256Kernel::kPortable;
#endif
}

Sha256Kernel PickKernel() {
  Sha256Kernel best = Sha256Kernel::kPortable;
  if (KernelSupported(Sha256Kernel::kSse41)) best = Sha256Kernel::kSse41;
  if (KernelSupported(Sha256Kernel::kAvx2)) best = Sha256Kernel::kAvx2;
  if (KernelSupported(Sha256Kernel::kShaNi)) best = Sha256Kernel::kShaNi;
  const char* env = std::getenv("DBPH_SHA256_KERNEL");
  if (env != nullptr) {
    const std::string want(env);
    Sha256Kernel forced = best;
    if (want == "portable") forced = Sha256Kernel::kPortable;
    if (want == "sse41") forced = Sha256Kernel::kSse41;
    if (want == "avx2") forced = Sha256Kernel::kAvx2;
    if (want == "shani") forced = Sha256Kernel::kShaNi;
    if (KernelSupported(forced)) return forced;
  }
  return best;
}

}  // namespace

Sha256State Sha256InitialState() {
  Sha256State state;
  std::memcpy(state.data(), kInit, sizeof(kInit));
  return state;
}

Sha256Kernel ActiveSha256Kernel() {
  static const Sha256Kernel kernel = PickKernel();
  return kernel;
}

const char* Sha256KernelName(Sha256Kernel kernel) {
  switch (kernel) {
    case Sha256Kernel::kPortable:
      return "portable";
    case Sha256Kernel::kSse41:
      return "sse41";
    case Sha256Kernel::kAvx2:
      return "avx2";
    case Sha256Kernel::kShaNi:
      return "shani";
  }
  return "unknown";
}

size_t Sha256CompressLanes() {
  switch (ActiveSha256Kernel()) {
    case Sha256Kernel::kAvx2:
      return 8;
    case Sha256Kernel::kSse41:
      return 4;
    case Sha256Kernel::kShaNi:
      return 2;
    case Sha256Kernel::kPortable:
      break;
  }
  return 1;
}

void Sha256Compress(Sha256State* state, const uint8_t* block) {
#if DBPH_SHA256_X86
  if (ActiveSha256Kernel() == Sha256Kernel::kShaNi) {
    Sha256State* states[1] = {state};
    const uint8_t* blocks[1] = {block};
    ShaNiCompress<1>(states, blocks);
    return;
  }
#endif
  CompressScalar(state, block);
}

void Sha256CompressMany(Sha256State* states, const uint8_t* const* blocks,
                        size_t n) {
  size_t i = 0;
#if DBPH_SHA256_X86
  switch (ActiveSha256Kernel()) {
    case Sha256Kernel::kShaNi:
      for (; i + 2 <= n; i += 2) {
        Sha256State* pair[2] = {&states[i], &states[i + 1]};
        ShaNiCompress<2>(pair, blocks + i);
      }
      if (i < n) {
        Sha256State* one[1] = {&states[i]};
        ShaNiCompress<1>(one, blocks + i);
        ++i;
      }
      return;
    case Sha256Kernel::kAvx2:
      for (; i + 8 <= n; i += 8) CompressAvx2x8(states + i, blocks + i);
      if (i + 4 <= n) {
        CompressSse41x4(states + i, blocks + i);
        i += 4;
      }
      break;
    case Sha256Kernel::kSse41:
      for (; i + 4 <= n; i += 4) CompressSse41x4(states + i, blocks + i);
      break;
    case Sha256Kernel::kPortable:
      break;
  }
#endif
  for (; i < n; ++i) CompressScalar(&states[i], blocks[i]);
}

}  // namespace crypto
}  // namespace dbph
