#include "crypto/chacha20.h"

#include <cstring>

namespace dbph {
namespace crypto {

namespace {

inline uint32_t RotL(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

inline uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

inline void StoreLe32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

inline void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b; d ^= a; d = RotL(d, 16);
  c += d; b ^= c; b = RotL(b, 12);
  a += b; d ^= a; d = RotL(d, 8);
  c += d; b ^= c; b = RotL(b, 7);
}

}  // namespace

Result<ChaCha20> ChaCha20::Create(const Bytes& key, const Bytes& nonce) {
  if (key.size() != kKeySize) {
    return Status::InvalidArgument("ChaCha20 key must be 32 bytes");
  }
  if (nonce.size() != kNonceSize) {
    return Status::InvalidArgument("ChaCha20 nonce must be 12 bytes");
  }
  return ChaCha20(key, nonce);
}

ChaCha20::ChaCha20(const Bytes& key, const Bytes& nonce) {
  for (int i = 0; i < 8; ++i) key_words_[i] = LoadLe32(key.data() + 4 * i);
  for (int i = 0; i < 3; ++i) nonce_words_[i] = LoadLe32(nonce.data() + 4 * i);
}

void ChaCha20::Block(uint32_t counter, uint8_t out[64]) const {
  uint32_t state[16] = {
      0x61707865, 0x3320646e, 0x79622d32, 0x6b206574,
      key_words_[0], key_words_[1], key_words_[2], key_words_[3],
      key_words_[4], key_words_[5], key_words_[6], key_words_[7],
      counter, nonce_words_[0], nonce_words_[1], nonce_words_[2],
  };
  uint32_t w[16];
  std::memcpy(w, state, sizeof(state));

  for (int i = 0; i < 10; ++i) {
    QuarterRound(w[0], w[4], w[8], w[12]);
    QuarterRound(w[1], w[5], w[9], w[13]);
    QuarterRound(w[2], w[6], w[10], w[14]);
    QuarterRound(w[3], w[7], w[11], w[15]);
    QuarterRound(w[0], w[5], w[10], w[15]);
    QuarterRound(w[1], w[6], w[11], w[12]);
    QuarterRound(w[2], w[7], w[8], w[13]);
    QuarterRound(w[3], w[4], w[9], w[14]);
  }
  for (int i = 0; i < 16; ++i) {
    StoreLe32(out + 4 * i, w[i] + state[i]);
  }
}

Bytes ChaCha20::Keystream(uint64_t offset, size_t len) const {
  Bytes out;
  out.reserve(len + 64);
  uint32_t block = static_cast<uint32_t>(offset / 64);
  size_t skip = offset % 64;
  uint8_t buf[64];
  while (out.size() < len + skip) {
    Block(block++, buf);
    out.insert(out.end(), buf, buf + 64);
  }
  return Bytes(out.begin() + static_cast<long>(skip),
               out.begin() + static_cast<long>(skip + len));
}

Bytes ChaCha20::Process(const Bytes& data, uint32_t counter) const {
  Bytes ks = Keystream(static_cast<uint64_t>(counter) * 64, data.size());
  Bytes out(data.size());
  for (size_t i = 0; i < data.size(); ++i) out[i] = data[i] ^ ks[i];
  return out;
}

}  // namespace crypto
}  // namespace dbph
