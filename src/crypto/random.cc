#include "crypto/random.h"

#include <cstdio>
#include <cstdlib>

#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace dbph {
namespace crypto {

uint64_t Rng::NextUint64() {
  uint8_t buf[8];
  Fill(buf, 8);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | buf[i];
  return v;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling: draw until the value falls into the largest
  // multiple of `bound` not exceeding 2^64.
  uint64_t limit = UINT64_MAX - (UINT64_MAX % bound + 1) % bound;
  uint64_t v;
  do {
    v = NextUint64();
  } while (v > limit);
  return v % bound;
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

HmacDrbg::HmacDrbg(const Bytes& seed) {
  key_.assign(Sha256::kDigestSize, 0x00);
  v_.assign(Sha256::kDigestSize, 0x01);
  Update(seed);
}

HmacDrbg::HmacDrbg(const std::string& label, uint64_t seed) {
  key_.assign(Sha256::kDigestSize, 0x00);
  v_.assign(Sha256::kDigestSize, 0x01);
  Bytes material = ToBytes(label);
  AppendUint64(&material, seed);
  Update(material);
}

void HmacDrbg::Update(const Bytes& provided) {
  // K = HMAC(K, V || 0x00 || provided); V = HMAC(K, V)
  Bytes input = v_;
  input.push_back(0x00);
  input.insert(input.end(), provided.begin(), provided.end());
  key_ = HmacSha256(key_, input);
  v_ = HmacSha256(key_, v_);
  if (!provided.empty()) {
    input = v_;
    input.push_back(0x01);
    input.insert(input.end(), provided.begin(), provided.end());
    key_ = HmacSha256(key_, input);
    v_ = HmacSha256(key_, v_);
  }
}

void HmacDrbg::Fill(uint8_t* out, size_t len) {
  size_t produced = 0;
  while (produced < len) {
    v_ = HmacSha256(key_, v_);
    size_t take = std::min(v_.size(), len - produced);
    std::copy(v_.begin(), v_.begin() + static_cast<long>(take),
              out + produced);
    produced += take;
  }
  Update(Bytes());
}

void HmacDrbg::Reseed(const Bytes& material) { Update(material); }

void SystemRng::Fill(uint8_t* out, size_t len) {
  static FILE* urandom = std::fopen("/dev/urandom", "rb");
  if (urandom == nullptr || std::fread(out, 1, len, urandom) != len) {
    // Entropy failure is unrecoverable for a crypto library.
    std::abort();
  }
}

Rng& DefaultRng() {
  static SystemRng rng;
  return rng;
}

}  // namespace crypto
}  // namespace dbph
