#ifndef DBPH_CRYPTO_SEARCH_TREE_H_
#define DBPH_CRYPTO_SEARCH_TREE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/merkle.h"

namespace dbph {
namespace crypto {

/// \brief The authenticated *search* structure (AuthPDB-style): a Merkle
/// tree over the relation's trapdoor tags in sorted order, each leaf
/// committing one (tag digest, posting-list digest) pair.
///
/// The row tree (MerkleTree over document leaves) authenticates what a
/// query RETURNS; this tree authenticates what a query SHOULD return.
/// The data owner — the only party who can enumerate which trapdoors its
/// plaintext contains — computes the (tag → leaf positions) map at
/// upload/append time and both sides maintain identical copies: the
/// server so it can attach membership / non-membership proofs to every
/// select, the owner-side client so it can verify them against its own
/// root. Deletes need no extra wire data: both sides apply the same
/// deterministic transform to the posting lists from the (already
/// verified) delete manifest positions.
///
/// Sortedness by tag is what makes zero-result answers provable: for an
/// absent tag the server shows the two adjacent committed entries that
/// bracket it (or the single boundary entry, or nothing for an empty
/// tree), and the verifier checks adjacency plus strict ordering — no
/// gap can hide a committed posting list. Sorted order is an invariant
/// every mutator preserves and Assign() validates, so a client that
/// bootstraps from a signed dump (SyncIntegrity) re-checks it once and
/// can then trust adjacency forever.
///
/// Complexity: every mutator rebuilds the interior in O(#tags) hashes —
/// mutations already pay O(n) in the server (full-scan deletes, arena
/// re-seal), so the search tree never dominates them. The select-path
/// costs are the ones that matter and they are O(log #tags) per proof.
class SearchTree {
 public:
  using Hash = MerkleTree::Hash;

  /// One committed entry: the tag digest and the full posting list
  /// (row-tree leaf positions, strictly increasing). The full list is
  /// kept on both sides — the server serves it in membership proofs and
  /// bootstrap dumps, the client checks returned results against it and
  /// both transform it through deletes.
  struct Entry {
    Hash tag{};
    std::vector<uint64_t> positions;

    bool operator==(const Entry& other) const = default;
  };

  /// One proved boundary entry of a non-membership proof.
  struct Neighbor {
    uint64_t index = 0;
    Hash tag{};
    Hash posting_digest{};
    std::vector<Hash> path;

    bool operator==(const Neighbor& other) const = default;
  };

  /// The tag digest of a serialized trapdoor (domain-separated SHA-256).
  /// Trapdoors are deterministic per (relation, attribute, value), so
  /// the digest the owner computes at upload time equals the digest the
  /// server computes from a query's wire bytes.
  static Hash TagDigest(const Bytes& trapdoor_bytes);

  /// Commitment to a posting list: SHA-256 over a domain prefix, the
  /// count, and each position.
  static Hash PostingDigest(const std::vector<uint64_t>& positions);

  /// The Merkle leaf committing one entry: LeafHash(tag | posting_digest).
  static Hash EntryLeaf(const Hash& tag, const Hash& posting_digest);

  SearchTree() = default;

  /// Replaces the whole structure. Validates what a hostile source could
  /// get wrong: tags strictly increasing, every posting list non-empty
  /// and strictly increasing with positions < `num_positions`.
  Status Assign(std::vector<Entry> entries, uint64_t num_positions);

  /// Applies an append delta: `delta` holds the new (tag → positions)
  /// pairs contributed by rows appended at leaf positions
  /// [begin_position, end_position), merged into the existing entries.
  /// Validates the delta fully before mutating anything (all-or-nothing).
  Status ApplyAppendDelta(const std::vector<Entry>& delta,
                          uint64_t begin_position, uint64_t end_position);

  /// The deterministic delete transform both sides apply from the
  /// verified delete-manifest positions (strictly increasing): deleted
  /// positions leave every posting list, surviving positions shift down
  /// by the number of deletions below them, entries with emptied lists
  /// are dropped. No-op (no rebuild) for an empty removal.
  void ApplyDelete(const std::vector<uint64_t>& removed_positions);

  void Clear();

  size_t size() const { return entries_.size(); }
  const Entry& entry(size_t index) const { return entries_[index]; }
  const std::vector<Entry>& entries() const { return entries_; }

  /// Index of the first entry with tag >= `tag`; size() when none.
  size_t LowerBound(const Hash& tag) const;

  /// The entry committed for `tag`, or nullptr when absent.
  const Entry* Find(const Hash& tag) const;

  Hash Root() const { return tree_.Root(); }

  /// Sibling path proving entry `index` (< size()) against Root().
  std::vector<Hash> MembershipPath(size_t index) const;

  /// The boundary entries proving `tag` is NOT committed: the two
  /// adjacent entries bracketing it, one boundary entry when the tag
  /// sorts before the first / after the last, none for an empty tree.
  /// Returns an (unverifiable) empty set when the tag is present.
  std::vector<Neighbor> NonMembershipProof(const Hash& tag) const;

  /// Verifies one committed entry against a trusted root.
  static Status VerifyMember(const Hash& root, uint64_t tree_size,
                             uint64_t index, const Hash& tag,
                             const Hash& posting_digest,
                             const std::vector<Hash>& path);

  /// Verifies that `tag` is absent from the committed sorted sequence:
  /// every neighbor's inclusion path must fold into `root` and the
  /// neighbor indices/tags must bracket `tag` with strict ordering and
  /// exact adjacency. Fails closed on any other shape — in particular
  /// for a tag that IS committed, no neighbor set can satisfy both
  /// adjacency and strict ordering.
  static Status VerifyNonMember(const Hash& root, uint64_t tree_size,
                                const Hash& tag,
                                const std::vector<Neighbor>& neighbors);

 private:
  void Rebuild();

  /// Sorted by tag, strictly increasing; positions_ strictly increasing
  /// within each entry.
  std::vector<Entry> entries_;
  /// Derived: leaf i = EntryLeaf(entries_[i]).
  MerkleTree tree_;
};

}  // namespace crypto
}  // namespace dbph

#endif  // DBPH_CRYPTO_SEARCH_TREE_H_
