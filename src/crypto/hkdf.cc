#include "crypto/hkdf.h"

#include <cassert>

#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace dbph {
namespace crypto {

Bytes HkdfExtract(const Bytes& salt, const Bytes& ikm) {
  Bytes effective_salt = salt;
  if (effective_salt.empty()) effective_salt.assign(Sha256::kDigestSize, 0);
  return HmacSha256(effective_salt, ikm);
}

Bytes HkdfExpand(const Bytes& prk, const Bytes& info, size_t out_len) {
  assert(out_len <= 255 * Sha256::kDigestSize);
  Bytes out;
  out.reserve(out_len);
  Bytes t;  // T(0) = empty
  uint8_t counter = 1;
  while (out.size() < out_len) {
    Bytes input = t;
    input.insert(input.end(), info.begin(), info.end());
    input.push_back(counter++);
    t = HmacSha256(prk, input);
    size_t take = std::min(t.size(), out_len - out.size());
    out.insert(out.end(), t.begin(), t.begin() + static_cast<long>(take));
  }
  return out;
}

Bytes Hkdf(const Bytes& salt, const Bytes& ikm, const Bytes& info,
           size_t out_len) {
  return HkdfExpand(HkdfExtract(salt, ikm), info, out_len);
}

Bytes DeriveSubkey(const Bytes& master, const std::string& label,
                   size_t out_len) {
  return Hkdf(/*salt=*/ToBytes("dbph-v1"), master, ToBytes(label), out_len);
}

}  // namespace crypto
}  // namespace dbph
