#ifndef DBPH_CRYPTO_MERKLE_H_
#define DBPH_CRYPTO_MERKLE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace dbph {
namespace crypto {

/// \brief SHA-256 Merkle tree over an ordered leaf sequence, in the
/// RFC 6962 style: leaf and interior hashes live in separate domains
/// (SHA-256(0x00 | data) vs SHA-256(0x01 | left | right)), so an interior
/// node can never be replayed as a leaf (the classic second-preimage
/// trick against domain-free trees).
///
/// Shape: level 0 holds the leaf hashes; each higher level pairs
/// neighbours left-to-right, and an unpaired rightmost node is promoted
/// unchanged (no self-pairing — duplicating the odd node, Bitcoin-style,
/// admits distinct leaf sequences with equal roots). The tree of n leaves
/// therefore has a unique root per (n, leaf sequence), and the root of
/// the empty tree is the defined constant EmptyRoot() = SHA-256("").
///
/// All interior levels are cached, so Root() is O(1), AppendLeaf updates
/// only the right spine (O(log n) hashes), and proof generation collects
/// existing node hashes without rehashing anything. Removing leaves
/// (RemoveSorted) rebuilds the interior in O(n) — deletions already cost
/// a full scan in the server, so the tree never dominates them.
///
/// Proofs:
///  - InclusionProof(i): the classic sibling path for one leaf.
///  - SubsetProof(positions): one proof for a whole result set — the
///    hashes of every maximal subtree containing no selected position,
///    in deterministic pre-order. Verification folds the claimed leaf
///    hashes and the proof back into a root; because the proof covers
///    the entire tree, the claimed positions are bound collectively:
///    removing, reordering, or substituting any claimed leaf changes the
///    recomputed root. A contiguous positions range [i, j) doubles as a
///    completeness proof for that range: the verifier learns these are
///    ALL the leaves between i and j. positions = [0, n) degenerates to
///    a full rebuild with an empty proof — the whole-relation
///    completeness check Recall uses.
class MerkleTree {
 public:
  using Hash = std::array<uint8_t, 32>;

  /// SHA-256(""): the root of a tree with no leaves.
  static Hash EmptyRoot();
  /// Leaf domain: SHA-256(0x00 | data).
  static Hash LeafHash(const Bytes& data);
  static Hash LeafHash(const uint8_t* data, size_t len);
  /// Interior domain: SHA-256(0x01 | left | right).
  static Hash NodeHash(const Hash& left, const Hash& right);

  MerkleTree() = default;

  /// Rebuilds the whole tree from `leaves` (already leaf-hashed).
  void Assign(std::vector<Hash> leaves);

  /// Appends one leaf hash, updating the right spine only.
  void AppendLeaf(const Hash& leaf);

  /// Removes the leaves at `positions` (strictly increasing, in range)
  /// and rebuilds the interior over the survivors.
  void RemoveSorted(const std::vector<uint64_t>& positions);

  void Clear();

  size_t size() const { return levels_.empty() ? 0 : levels_[0].size(); }
  const Hash& leaf(size_t index) const { return levels_[0][index]; }
  Hash Root() const;

  /// Sibling path for leaf `index` (bottom-up). index must be < size().
  std::vector<Hash> InclusionProof(size_t index) const;

  /// Verifies a sibling path against a root for a tree of `tree_size`
  /// leaves. Fails closed on any mismatch, including a path of the wrong
  /// length for (tree_size, index).
  static Status VerifyInclusion(const Hash& root, uint64_t tree_size,
                                uint64_t index, const Hash& leaf,
                                const std::vector<Hash>& path);

  /// One proof for the whole selected set: hashes of every maximal
  /// unselected subtree, pre-order. `positions` must be strictly
  /// increasing and < size(). An empty selection proves only the root
  /// (the proof is {Root()}).
  std::vector<Hash> SubsetProof(const std::vector<uint64_t>& positions) const;

  /// Recomputes the root of a `tree_size`-leaf tree from the selected
  /// leaves and a SubsetProof. `positions` must be strictly increasing
  /// and < tree_size, with one entry of `leaves` per position. Errors on
  /// a malformed selection or a proof with missing or surplus hashes —
  /// the caller compares the returned root against the trusted one.
  /// Work is O((|positions| + |proof|) * log(tree_size)) regardless of
  /// the (attacker-supplied) tree_size — no allocation scales with it.
  static Result<Hash> RootFromSubset(uint64_t tree_size,
                                     const std::vector<uint64_t>& positions,
                                     const std::vector<Hash>& leaves,
                                     const std::vector<Hash>& proof);

  static Bytes ToBytes(const Hash& hash) {
    return Bytes(hash.begin(), hash.end());
  }
  static Result<Hash> FromBytes(const Bytes& bytes);

 private:
  /// levels_[0] = leaves, levels_.back() = {root} (absent when empty).
  std::vector<std::vector<Hash>> levels_;

  void RebuildInterior();
};

}  // namespace crypto
}  // namespace dbph

#endif  // DBPH_CRYPTO_MERKLE_H_
