#include "crypto/prf.h"

#include "crypto/hmac.h"

namespace dbph {
namespace crypto {

Bytes Prf::Eval(const Bytes& input, size_t out_len) const {
  return HmacSha256Expand(key_, input, out_len);
}

Bytes StreamGenerator::Block(uint64_t index, size_t width) const {
  Bytes input = nonce_;
  AppendUint64(&input, index);
  return prf_.Eval(input, width);
}

}  // namespace crypto
}  // namespace dbph
