#ifndef DBPH_CRYPTO_SHA256_COMPRESS_H_
#define DBPH_CRYPTO_SHA256_COMPRESS_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace dbph {
namespace crypto {

/// \brief The raw SHA-256 chaining state (a midstate): eight working
/// words H0..H7. Exposing it lets callers snapshot the state after
/// absorbing a fixed prefix (HMAC's ipad/opad blocks) and replay only
/// the suffix per message — the core of the scan kernel's "two
/// compressions per trapdoor check" budget.
using Sha256State = std::array<uint32_t, 8>;

/// The FIPS 180-4 initial chaining value H(0).
Sha256State Sha256InitialState();

/// \brief Folds one 64-byte block into `state` — the raw compression
/// function, runtime-dispatched (SHA-NI when the CPU has it, scalar
/// otherwise). Bit-exact across every kernel; Sha256::Update is built
/// on it.
void Sha256Compress(Sha256State* state, const uint8_t* block);

/// \brief Multi-way compression: lane i folds blocks[i] into states[i],
/// for n independent lanes. The batched trapdoor matcher feeds 8 lanes
/// at a time; the AVX2/SSE kernels transpose the lanes into vector
/// registers and run all of them through the round function together,
/// the SHA-NI kernel interleaves two hardware streams, and the portable
/// kernel just loops. Results are bit-exact with n scalar compressions.
void Sha256CompressMany(Sha256State* states, const uint8_t* const* blocks,
                        size_t n);

/// How many lanes the active kernel digests per pass. Callers batching
/// work should aim for multiples of this; any n still works.
size_t Sha256CompressLanes();

/// Which compression implementation the runtime dispatch selected.
enum class Sha256Kernel : uint8_t {
  kPortable = 0,  ///< scalar C++, any CPU
  kSse41 = 1,     ///< 4-way transposed lanes in XMM registers
  kAvx2 = 2,      ///< 8-way transposed lanes in YMM registers
  kShaNi = 3,     ///< SHA extensions, two interleaved streams
};

/// \brief The kernel the dispatcher picked for this process: the most
/// capable implementation the CPU supports (cpuid-gated), unless the
/// environment variable DBPH_SHA256_KERNEL ∈ {portable, sse41, avx2,
/// shani} forces a less capable one (forcing an unsupported kernel
/// falls back to the best supported — never to an illegal instruction).
/// Decided once, on first use; thread-safe.
Sha256Kernel ActiveSha256Kernel();

const char* Sha256KernelName(Sha256Kernel kernel);

}  // namespace crypto
}  // namespace dbph

#endif  // DBPH_CRYPTO_SHA256_COMPRESS_H_
