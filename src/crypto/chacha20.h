#ifndef DBPH_CRYPTO_CHACHA20_H_
#define DBPH_CRYPTO_CHACHA20_H_

#include "common/bytes.h"
#include "common/result.h"

namespace dbph {
namespace crypto {

/// \brief ChaCha20 stream cipher (RFC 8439).
///
/// Fast software stream cipher used as an alternative pseudorandom stream
/// generator for the SWP schemes and as the workhorse of the seeded
/// experiment RNG. Verified against the RFC 8439 §2.3.2/§2.4.2 vectors.
class ChaCha20 {
 public:
  static constexpr size_t kKeySize = 32;
  static constexpr size_t kNonceSize = 12;

  /// `key` must be 32 bytes, `nonce` 12 bytes.
  static Result<ChaCha20> Create(const Bytes& key, const Bytes& nonce);

  /// XORs the keystream (starting at block `counter`, byte 0) into data.
  Bytes Process(const Bytes& data, uint32_t counter = 1) const;

  /// Returns `len` keystream bytes starting at absolute byte `offset`
  /// (offset 0 = first byte of block 0). Random access is O(len).
  Bytes Keystream(uint64_t offset, size_t len) const;

 private:
  ChaCha20(const Bytes& key, const Bytes& nonce);
  void Block(uint32_t counter, uint8_t out[64]) const;

  uint32_t key_words_[8];
  uint32_t nonce_words_[3];
};

}  // namespace crypto
}  // namespace dbph

#endif  // DBPH_CRYPTO_CHACHA20_H_
