#include "crypto/ctr.h"

#include <cstring>

#include "common/macros.h"

namespace dbph {
namespace crypto {

Result<AesCtr> AesCtr::Create(const Bytes& key, const Bytes& nonce) {
  if (nonce.size() != 12) {
    return Status::InvalidArgument("AES-CTR nonce must be 12 bytes");
  }
  DBPH_ASSIGN_OR_RETURN(Aes aes, Aes::Create(key));
  return AesCtr(std::move(aes), nonce);
}

Bytes AesCtr::Keystream(uint64_t offset, size_t len) const {
  Bytes out;
  out.reserve(len + Aes::kBlockSize);
  uint64_t first_block = offset / Aes::kBlockSize;
  size_t skip = offset % Aes::kBlockSize;

  uint8_t counter_block[16];
  uint8_t keystream_block[16];
  std::memcpy(counter_block, nonce_.data(), 12);

  uint64_t block = first_block;
  while (out.size() < len + skip) {
    counter_block[12] = static_cast<uint8_t>(block >> 24);
    counter_block[13] = static_cast<uint8_t>(block >> 16);
    counter_block[14] = static_cast<uint8_t>(block >> 8);
    counter_block[15] = static_cast<uint8_t>(block);
    aes_.EncryptBlock(counter_block, keystream_block);
    out.insert(out.end(), keystream_block, keystream_block + 16);
    ++block;
  }
  return Bytes(out.begin() + static_cast<long>(skip),
               out.begin() + static_cast<long>(skip + len));
}

Bytes AesCtr::Process(const Bytes& data) const {
  Bytes ks = Keystream(0, data.size());
  Bytes out(data.size());
  for (size_t i = 0; i < data.size(); ++i) out[i] = data[i] ^ ks[i];
  return out;
}

}  // namespace crypto
}  // namespace dbph
