#ifndef DBPH_CRYPTO_HMAC_H_
#define DBPH_CRYPTO_HMAC_H_

#include "common/bytes.h"

namespace dbph {
namespace crypto {

/// \brief HMAC-SHA256 (RFC 2104 / FIPS 198-1).
///
/// Keys of any length are accepted (longer than the block size are hashed
/// first, per the RFC). Verified against the RFC 4231 test vectors.
Bytes HmacSha256(const Bytes& key, const Bytes& message);

/// \brief HMAC-SHA256 truncated/expanded to exactly `out_len` bytes.
///
/// For out_len <= 32 the digest is truncated. For longer outputs the
/// digest is extended in counter mode: T_i = HMAC(key, msg | i), i = 0..,
/// concatenated — the standard PRF-stretching used by HKDF-Expand.
Bytes HmacSha256Expand(const Bytes& key, const Bytes& message,
                       size_t out_len);

}  // namespace crypto
}  // namespace dbph

#endif  // DBPH_CRYPTO_HMAC_H_
