#ifndef DBPH_CRYPTO_HMAC_H_
#define DBPH_CRYPTO_HMAC_H_

#include <cstddef>
#include <cstdint>

#include "common/bytes.h"
#include "crypto/sha256.h"
#include "crypto/sha256_compress.h"

namespace dbph {
namespace crypto {

/// \brief HMAC-SHA256 (RFC 2104 / FIPS 198-1).
///
/// Keys of any length are accepted (longer than the block size are hashed
/// first, per the RFC). Verified against the RFC 4231 test vectors.
Bytes HmacSha256(const Bytes& key, const Bytes& message);

/// \brief HMAC-SHA256 truncated/expanded to exactly `out_len` bytes.
///
/// For out_len <= 32 the digest is truncated. For longer outputs the
/// digest is extended in counter mode: T_i = HMAC(key, msg | i), i = 0..,
/// concatenated — the standard PRF-stretching used by HKDF-Expand.
Bytes HmacSha256Expand(const Bytes& key, const Bytes& message,
                       size_t out_len);

/// \brief A precomputed HMAC-SHA256 key schedule: the ipad and opad
/// chaining states are derived once per key, so evaluating a short
/// message costs exactly two SHA-256 compressions (one inner, one
/// outer) and zero heap allocations — against four compressions plus
/// the key copy/pad rebuild HmacSha256 pays per call.
///
/// This is the scan kernel's crypto core: a trapdoor's check key is
/// fixed for an entire scan, so the schedule amortizes across every
/// candidate word. Digests are bit-identical to HmacSha256 (asserted
/// against the RFC 4231 vectors in tests/crypto_hmac_test.cc).
class HmacSha256Precomputed {
 public:
  static constexpr size_t kDigestSize = Sha256::kDigestSize;
  static constexpr size_t kBlockSize = Sha256::kBlockSize;
  /// Longest message the single-inner-block fast path supports:
  /// 64 (ipad block) + len + padding must fit two blocks.
  static constexpr size_t kMaxOneBlockMessage = kBlockSize - 9;

  explicit HmacSha256Precomputed(const Bytes& key);

  /// Evaluates HMAC(key, msg) into `out` (32 bytes), zero allocations.
  void Eval(const uint8_t* msg, size_t len, uint8_t out[kDigestSize]) const;

  /// Convenience overload for tests and cold paths.
  Bytes Eval(const Bytes& msg) const;

  /// \brief Batched evaluation of `n` equal-length messages:
  /// out + 32*i receives HMAC(key, msgs[i]). Runs the lanes through the
  /// multi-way compression kernel (8 at a time), zero heap allocations.
  /// Bit-identical to n scalar Eval calls.
  void EvalMany(const uint8_t* const* msgs, size_t msg_len, size_t n,
                uint8_t* out) const;

  /// The chaining state after absorbing the ipad (resp. opad) block.
  const Sha256State& inner_midstate() const { return inner_; }
  const Sha256State& outer_midstate() const { return outer_; }

 private:
  Sha256State inner_;
  Sha256State outer_;
};

/// \brief Incremental HMAC-SHA256 over a precomputed schedule: stream
/// the message piecewise (no materialized input buffer), then Finish.
/// Reset() rewinds to the schedule's ipad state for the next message,
/// so one stream object MACs any number of documents with zero
/// per-document allocations.
class HmacSha256Stream {
 public:
  explicit HmacSha256Stream(const HmacSha256Precomputed* schedule)
      : schedule_(schedule),
        inner_(Sha256::FromMidstate(schedule->inner_midstate(),
                                    HmacSha256Precomputed::kBlockSize)) {}

  void Update(const uint8_t* data, size_t len) { inner_.Update(data, len); }
  void Update(const Bytes& data) { inner_.Update(data); }
  /// Appends a big-endian 32-bit integer (the serializer's framing).
  void UpdateUint32(uint32_t v);

  /// Finalizes: HMAC(key, everything streamed since construction/Reset).
  void FinishInto(uint8_t out[HmacSha256Precomputed::kDigestSize]);
  Bytes Finish();

  /// Rewinds to the empty-message state for the next MAC.
  void Reset();

 private:
  const HmacSha256Precomputed* schedule_;
  Sha256 inner_;
};

}  // namespace crypto
}  // namespace dbph

#endif  // DBPH_CRYPTO_HMAC_H_
