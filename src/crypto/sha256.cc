#include "crypto/sha256.h"

#include <cstring>

namespace dbph {
namespace crypto {

Sha256::Sha256() { Reset(); }

void Sha256::Reset() {
  state_ = Sha256InitialState();
  buffer_len_ = 0;
  total_len_ = 0;
}

Sha256 Sha256::FromMidstate(const Sha256State& midstate,
                            uint64_t prefix_bytes) {
  Sha256 h;
  h.state_ = midstate;
  h.total_len_ = prefix_bytes;
  return h;
}

void Sha256::Update(const uint8_t* data, size_t len) {
  total_len_ += len;
  // Fast path: with an empty buffer, whole blocks compress straight from
  // the input without staging through buffer_.
  if (buffer_len_ == 0) {
    while (len >= kBlockSize) {
      Sha256Compress(&state_, data);
      data += kBlockSize;
      len -= kBlockSize;
    }
  }
  while (len > 0) {
    size_t take = std::min(len, kBlockSize - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data, take);
    buffer_len_ += take;
    data += take;
    len -= take;
    if (buffer_len_ == kBlockSize) {
      Sha256Compress(&state_, buffer_.data());
      buffer_len_ = 0;
      // Back on a block boundary: drain remaining whole blocks directly.
      while (len >= kBlockSize) {
        Sha256Compress(&state_, data);
        data += kBlockSize;
        len -= kBlockSize;
      }
    }
  }
}

void Sha256::FinishInto(uint8_t out[kDigestSize]) {
  uint64_t bit_len = total_len_ * 8;
  uint8_t pad = 0x80;
  Update(&pad, 1);
  uint8_t zero = 0x00;
  while (buffer_len_ != 56) Update(&zero, 1);
  uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  Update(len_be, 8);

  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<uint8_t>(state_[i]);
  }
}

Bytes Sha256::Finish() {
  Bytes digest(kDigestSize);
  FinishInto(digest.data());
  return digest;
}

Bytes Sha256::Hash(const Bytes& data) {
  Sha256 h;
  h.Update(data);
  return h.Finish();
}

}  // namespace crypto
}  // namespace dbph
