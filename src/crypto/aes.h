#ifndef DBPH_CRYPTO_AES_H_
#define DBPH_CRYPTO_AES_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"
#include "common/result.h"

namespace dbph {
namespace crypto {

/// \brief AES block cipher (FIPS 197), key sizes 128/192/256 bits.
///
/// Reference (table-based) implementation; verified against the FIPS 197
/// appendix vectors and NIST AESAVS known-answer tests. Used as the block
/// cipher underneath CTR mode (ctr.h) and as the secret permutation of the
/// bucketization baseline.
class Aes {
 public:
  static constexpr size_t kBlockSize = 16;

  /// Creates a cipher context. The key must be 16, 24 or 32 bytes.
  static Result<Aes> Create(const Bytes& key);

  /// Encrypts exactly one 16-byte block: out = E_k(in).
  void EncryptBlock(const uint8_t in[16], uint8_t out[16]) const;

  /// Decrypts exactly one 16-byte block: out = D_k(in).
  void DecryptBlock(const uint8_t in[16], uint8_t out[16]) const;

  /// Block-sized convenience wrappers.
  Bytes EncryptBlock(const Bytes& block) const;
  Bytes DecryptBlock(const Bytes& block) const;

  int rounds() const { return rounds_; }

 private:
  Aes() = default;
  void ExpandKey(const Bytes& key);

  // Round keys as 4-byte words; max 15 rounds (AES-256) + 1, 4 words each.
  std::array<uint32_t, 60> enc_keys_{};
  std::array<uint32_t, 60> dec_keys_{};
  int rounds_ = 0;
};

}  // namespace crypto
}  // namespace dbph

#endif  // DBPH_CRYPTO_AES_H_
