#ifndef DBPH_CRYPTO_PRF_H_
#define DBPH_CRYPTO_PRF_H_

#include "common/bytes.h"

namespace dbph {
namespace crypto {

/// \brief Keyed pseudorandom function F_k : {0,1}* -> {0,1}^{8*out_len},
/// realized as HMAC-SHA256 with counter-mode expansion.
///
/// This is the "F" of the SWP construction (maps the stream half S_i to the
/// check half) and the "f" that derives per-word keys k_i = f_{k'}(L_i).
class Prf {
 public:
  explicit Prf(Bytes key) : key_(std::move(key)) {}

  /// Evaluates the PRF on `input`, producing exactly `out_len` bytes.
  Bytes Eval(const Bytes& input, size_t out_len) const;

  const Bytes& key() const { return key_; }

 private:
  Bytes key_;
};

/// \brief The pseudorandom stream generator "G" of the SWP construction,
/// with random access by element index.
///
/// S_i = PRF(key, nonce | i) truncated to `width` bytes. Random access by
/// index is essential: the data owner decrypts word slots independently,
/// and the server never learns the seed.
class StreamGenerator {
 public:
  StreamGenerator(Bytes key, Bytes nonce)
      : prf_(std::move(key)), nonce_(std::move(nonce)) {}

  /// Returns S_index, a pseudorandom block of `width` bytes.
  Bytes Block(uint64_t index, size_t width) const;

 private:
  Prf prf_;
  Bytes nonce_;
};

}  // namespace crypto
}  // namespace dbph

#endif  // DBPH_CRYPTO_PRF_H_
