#ifndef DBPH_CRYPTO_FEISTEL_H_
#define DBPH_CRYPTO_FEISTEL_H_

#include "common/bytes.h"
#include "common/result.h"

namespace dbph {
namespace crypto {

/// \brief Length-preserving pseudorandom permutation over byte strings of
/// any length >= 2, built as an alternating (unbalanced) Feistel network
/// with an HMAC-SHA256 round function (Luby–Rackoff).
///
/// SWP's deterministic pre-encryption E'' must be an invertible,
/// deterministic, length-preserving cipher over *word-sized* strings;
/// words are rarely exactly one AES block, so a dedicated small-domain
/// PRP is required. Alternating Feistel with a PRF round function is the
/// standard construction (also the basis of format-preserving encryption
/// modes); we use kRounds = 8 for comfortable margin over the 4-round
/// Luby–Rackoff bound.
///
/// Layout for input of n bytes: L = first floor(n/2) bytes, R = rest.
/// Even rounds update R from L, odd rounds update L from R; inversion
/// replays the rounds in reverse.
class FeistelPrp {
 public:
  static constexpr int kRounds = 8;

  /// `key` may be any length (it keys HMAC). Prefer >= 16 bytes.
  explicit FeistelPrp(Bytes key) : key_(std::move(key)) {}

  /// Encrypts `in`; returns a permuted string of the same length.
  /// Inputs shorter than 2 bytes are rejected (no room to split).
  Result<Bytes> Encrypt(const Bytes& in) const;

  /// Inverts Encrypt.
  Result<Bytes> Decrypt(const Bytes& in) const;

 private:
  /// Round function: PRF(key_, round | other_half) expanded to `out_len`.
  Bytes RoundValue(int round, const Bytes& half, size_t out_len) const;

  Bytes key_;
};

}  // namespace crypto
}  // namespace dbph

#endif  // DBPH_CRYPTO_FEISTEL_H_
