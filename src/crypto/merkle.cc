#include "crypto/merkle.h"

#include <algorithm>

#include "crypto/sha256.h"

namespace dbph {
namespace crypto {

namespace {

MerkleTree::Hash ToHash(const Bytes& digest) {
  MerkleTree::Hash hash;
  std::copy(digest.begin(), digest.end(), hash.begin());
  return hash;
}

constexpr uint8_t kLeafDomain = 0x00;
constexpr uint8_t kNodeDomain = 0x01;

}  // namespace

MerkleTree::Hash MerkleTree::EmptyRoot() {
  Sha256 sha;
  return ToHash(sha.Finish());
}

MerkleTree::Hash MerkleTree::LeafHash(const Bytes& data) {
  return LeafHash(data.data(), data.size());
}

MerkleTree::Hash MerkleTree::LeafHash(const uint8_t* data, size_t len) {
  Sha256 sha;
  sha.Update(&kLeafDomain, 1);
  sha.Update(data, len);
  return ToHash(sha.Finish());
}

MerkleTree::Hash MerkleTree::NodeHash(const Hash& left, const Hash& right) {
  Sha256 sha;
  sha.Update(&kNodeDomain, 1);
  sha.Update(left.data(), left.size());
  sha.Update(right.data(), right.size());
  return ToHash(sha.Finish());
}

void MerkleTree::Assign(std::vector<Hash> leaves) {
  levels_.clear();
  if (leaves.empty()) return;
  levels_.push_back(std::move(leaves));
  RebuildInterior();
}

void MerkleTree::RebuildInterior() {
  levels_.resize(1);
  while (levels_.back().size() > 1) {
    const std::vector<Hash>& below = levels_.back();
    std::vector<Hash> above;
    above.reserve((below.size() + 1) / 2);
    for (size_t i = 0; i + 1 < below.size(); i += 2) {
      above.push_back(NodeHash(below[i], below[i + 1]));
    }
    if (below.size() % 2 == 1) above.push_back(below.back());  // promote
    levels_.push_back(std::move(above));
  }
}

void MerkleTree::AppendLeaf(const Hash& leaf) {
  if (levels_.empty()) levels_.emplace_back();
  levels_[0].push_back(leaf);
  // Only the right spine changes: at each level exactly one parent — the
  // last — covers the new leaf.
  size_t level = 0;
  while (levels_[level].size() > 1) {
    size_t parent_count = (levels_[level].size() + 1) / 2;
    if (level + 1 == levels_.size()) levels_.emplace_back();
    levels_[level + 1].resize(parent_count);
    size_t p = parent_count - 1;
    const std::vector<Hash>& below = levels_[level];
    levels_[level + 1][p] = (2 * p + 1 < below.size())
                                ? NodeHash(below[2 * p], below[2 * p + 1])
                                : below[2 * p];
    ++level;
  }
}

void MerkleTree::RemoveSorted(const std::vector<uint64_t>& positions) {
  if (positions.empty() || levels_.empty()) return;
  std::vector<Hash> kept;
  kept.reserve(levels_[0].size() - positions.size());
  size_t next = 0;
  for (size_t i = 0; i < levels_[0].size(); ++i) {
    if (next < positions.size() && positions[next] == i) {
      ++next;
      continue;
    }
    kept.push_back(levels_[0][i]);
  }
  levels_.clear();
  if (kept.empty()) return;
  levels_.push_back(std::move(kept));
  RebuildInterior();
}

void MerkleTree::Clear() { levels_.clear(); }

MerkleTree::Hash MerkleTree::Root() const {
  if (levels_.empty()) return EmptyRoot();
  return levels_.back()[0];
}

std::vector<MerkleTree::Hash> MerkleTree::InclusionProof(size_t index) const {
  std::vector<Hash> path;
  for (size_t level = 0; level + 1 < levels_.size(); ++level) {
    size_t sibling = index ^ 1;
    // A promoted (unpaired) node contributes no sibling hash; the
    // verifier reconstructs the same skip from (tree_size, index).
    if (sibling < levels_[level].size()) path.push_back(levels_[level][sibling]);
    index /= 2;
  }
  return path;
}

Status MerkleTree::VerifyInclusion(const Hash& root, uint64_t tree_size,
                                   uint64_t index, const Hash& leaf,
                                   const std::vector<Hash>& path) {
  if (index >= tree_size) {
    return Status::InvalidArgument("merkle: index outside tree");
  }
  Hash node = leaf;
  uint64_t width = tree_size;
  size_t used = 0;
  while (width > 1) {
    uint64_t sibling = index ^ 1;
    if (sibling < width) {
      if (used >= path.size()) {
        return Status::DataLoss("merkle: inclusion path too short");
      }
      node = (index % 2 == 1) ? NodeHash(path[used], node)
                              : NodeHash(node, path[used]);
      ++used;
    }
    index /= 2;
    width = (width + 1) / 2;
  }
  if (used != path.size()) {
    return Status::DataLoss("merkle: inclusion path has surplus hashes");
  }
  if (node != root) return Status::DataLoss("merkle: root mismatch");
  return Status::OK();
}

namespace {

/// Shared recursion shape for subset proofs: visits the implicit node
/// (level, idx) of a `counts[level]`-wide level, with the selected
/// positions inside its range given as [begin, end) into the sorted
/// positions array.
struct SubsetProver {
  const std::vector<std::vector<MerkleTree::Hash>>* levels;
  std::vector<MerkleTree::Hash>* out;

  void Visit(size_t level, size_t idx, const uint64_t* begin,
             const uint64_t* end) {
    if (begin == end) {
      out->push_back((*levels)[level][idx]);
      return;
    }
    if (level == 0) return;  // a selected leaf — the verifier supplies it
    uint64_t mid = static_cast<uint64_t>(2 * idx + 1) << (level - 1);
    const uint64_t* split = std::lower_bound(begin, end, mid);
    Visit(level - 1, 2 * idx, begin, split);
    if (2 * idx + 1 < (*levels)[level - 1].size()) {
      Visit(level - 1, 2 * idx + 1, split, end);
    }
  }
};

struct SubsetVerifier {
  const std::vector<uint64_t>* counts;  // level widths, bottom-up
  const std::vector<MerkleTree::Hash>* leaves;
  const std::vector<MerkleTree::Hash>* proof;
  size_t next_leaf = 0;
  size_t next_proof = 0;
  bool failed = false;

  MerkleTree::Hash Visit(size_t level, size_t idx, const uint64_t* begin,
                         const uint64_t* end) {
    if (failed) return {};
    if (begin == end) {
      if (next_proof >= proof->size()) {
        failed = true;
        return {};
      }
      return (*proof)[next_proof++];
    }
    if (level == 0) {
      // Exactly one selected position covers a leaf node.
      if (end - begin != 1 || next_leaf >= leaves->size()) {
        failed = true;
        return {};
      }
      return (*leaves)[next_leaf++];
    }
    uint64_t mid = static_cast<uint64_t>(2 * idx + 1) << (level - 1);
    const uint64_t* split = std::lower_bound(begin, end, mid);
    MerkleTree::Hash left = Visit(level - 1, 2 * idx, begin, split);
    if (2 * idx + 1 < (*counts)[level - 1]) {
      MerkleTree::Hash right = Visit(level - 1, 2 * idx + 1, split, end);
      return MerkleTree::NodeHash(left, right);
    }
    if (split != end) failed = true;  // positions past the tree edge
    return left;
  }
};

}  // namespace

std::vector<MerkleTree::Hash> MerkleTree::SubsetProof(
    const std::vector<uint64_t>& positions) const {
  std::vector<Hash> proof;
  if (levels_.empty()) return proof;
  SubsetProver prover{&levels_, &proof};
  prover.Visit(levels_.size() - 1, 0, positions.data(),
               positions.data() + positions.size());
  return proof;
}

Result<MerkleTree::Hash> MerkleTree::RootFromSubset(
    uint64_t tree_size, const std::vector<uint64_t>& positions,
    const std::vector<Hash>& leaves, const std::vector<Hash>& proof) {
  if (leaves.size() != positions.size()) {
    return Status::InvalidArgument("merkle: one leaf hash per position");
  }
  for (size_t i = 0; i < positions.size(); ++i) {
    if (positions[i] >= tree_size ||
        (i > 0 && positions[i] <= positions[i - 1])) {
      return Status::InvalidArgument(
          "merkle: positions must be strictly increasing and inside the tree");
    }
  }
  if (tree_size == 0) {
    if (!proof.empty()) {
      return Status::DataLoss("merkle: proof for an empty tree");
    }
    return EmptyRoot();
  }
  // Level widths bottom-up; at most 64 levels whatever tree_size claims,
  // and the recursion below touches O((|positions|+|proof|) * 64) nodes,
  // never tree_size of anything.
  std::vector<uint64_t> counts;
  for (uint64_t width = tree_size;; width = (width + 1) / 2) {
    counts.push_back(width);
    if (width == 1) break;
  }
  SubsetVerifier verifier{&counts, &leaves, &proof};
  Hash root = verifier.Visit(counts.size() - 1, 0, positions.data(),
                             positions.data() + positions.size());
  if (verifier.failed || verifier.next_leaf != leaves.size() ||
      verifier.next_proof != proof.size()) {
    return Status::DataLoss("merkle: malformed subset proof");
  }
  return root;
}

Result<MerkleTree::Hash> MerkleTree::FromBytes(const Bytes& bytes) {
  if (bytes.size() != 32) {
    return Status::InvalidArgument("merkle: a hash is exactly 32 bytes");
  }
  Hash hash;
  std::copy(bytes.begin(), bytes.end(), hash.begin());
  return hash;
}

}  // namespace crypto
}  // namespace dbph
