#ifndef DBPH_PROTOCOL_MESSAGES_H_
#define DBPH_PROTOCOL_MESSAGES_H_

#include <string>

#include "common/bytes.h"
#include "common/result.h"

namespace dbph {
namespace protocol {

/// Wire message types between Alex (client) and Eve (server).
enum class MessageType : uint8_t {
  kStoreRelation = 1,   ///< client -> server: EncryptedRelation payload
  kStoreOk = 2,         ///< server -> client
  kSelect = 3,          ///< client -> server: EncryptedQuery payload
  kSelectResult = 4,    ///< server -> client: matching documents
  kDropRelation = 5,    ///< client -> server: relation name
  kDropOk = 6,          ///< server -> client
  kError = 7,           ///< server -> client: status code + message
  kAppendTuples = 8,    ///< client -> server: name + encrypted documents
  kAppendOk = 9,        ///< server -> client
  kDeleteWhere = 10,    ///< client -> server: EncryptedQuery payload
  kDeleteResult = 11,   ///< server -> client: number of documents removed
  kFetchRelation = 12,  ///< client -> server: relation name ("recall")
  kFetchResult = 13,    ///< server -> client: every stored document
};

constexpr uint8_t kMaxMessageType = 13;

/// \brief A framed wire message: 1 type byte + length-prefixed payload.
///
/// Everything Alex and Eve exchange goes through this framing, so the
/// adversary's transcript (the observation log) is byte-identical to what
/// a network eavesdropper in the Alex-Eve channel would record.
struct Envelope {
  MessageType type = MessageType::kError;
  Bytes payload;

  Bytes Serialize() const;
  static Result<Envelope> Parse(const Bytes& wire);
};

/// \brief Builds a kError envelope from a Status.
Envelope MakeErrorEnvelope(const Status& status);

/// \brief Extracts the Status carried by a kError envelope. A malformed
/// error envelope yields a kDataLoss status instead.
Status ParseErrorEnvelope(const Envelope& envelope);

}  // namespace protocol
}  // namespace dbph

#endif  // DBPH_PROTOCOL_MESSAGES_H_
