#ifndef DBPH_PROTOCOL_MESSAGES_H_
#define DBPH_PROTOCOL_MESSAGES_H_

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace dbph {
namespace protocol {

/// Wire message types between Alex (client) and Eve (server).
enum class MessageType : uint8_t {
  kStoreRelation = 1,   ///< client -> server: EncryptedRelation payload
  kStoreOk = 2,         ///< server -> client
  kSelect = 3,          ///< client -> server: EncryptedQuery payload
  kSelectResult = 4,    ///< server -> client: matching documents
  kDropRelation = 5,    ///< client -> server: relation name
  kDropOk = 6,          ///< server -> client
  kError = 7,           ///< server -> client: status code + message
  kAppendTuples = 8,    ///< client -> server: name + encrypted documents
  kAppendOk = 9,        ///< server -> client
  kDeleteWhere = 10,    ///< client -> server: EncryptedQuery payload
  kDeleteResult = 11,   ///< server -> client: number of documents removed
  kFetchRelation = 12,  ///< client -> server: relation name ("recall")
  kFetchResult = 13,    ///< server -> client: every stored document
  kBatchRequest = 14,   ///< client -> server: wrapped sub-request envelopes
  kBatchResponse = 15,  ///< server -> client: one sub-response per request
  kPing = 16,           ///< client -> server: opaque liveness cookie
  kPong = 17,           ///< server -> client: the same cookie, echoed
  kFlush = 18,          ///< client -> server: demand a durability point
  kFlushOk = 19,        ///< server -> client: prior mutations are durable
  kExplain = 20,        ///< client -> server: EncryptedQuery payload; plan only
  kExplainResult = 21,  ///< server -> client: serialized PlanReport
  kAttestRoot = 22,     ///< client -> server: relation + epoch + root + HMAC
  kAttestOk = 23,       ///< server -> client: attestation stored
  kStats = 24,          ///< client -> server: empty; request a metrics snapshot
  kStatsResult = 25,    ///< server -> client: serialized obs::RegistrySnapshot
  kLeakageReport = 26,  ///< client -> server: empty; request the leakage view
  kLeakageReportResult = 27,  ///< server -> client: obs::leakage::LeakageReport
};

constexpr uint8_t kMaxMessageType = 27;

/// Hard upper bound on one wire frame. Both the network frame codec and
/// Envelope::Parse reject a larger attacker-controlled length prefix
/// *before* allocating anything; large enough for a whole-relation
/// kStoreRelation / kFetchResult, small enough that a hostile peer cannot
/// make the server reserve gigabytes.
constexpr uint32_t kMaxFrameBytes = 256u * 1024 * 1024;

/// Cap on an Envelope payload: the serialized envelope (1 type byte +
/// 4 length bytes + payload) must fit one frame, so every envelope that
/// parses is also guaranteed to be transmittable.
constexpr uint32_t kMaxEnvelopePayloadBytes = kMaxFrameBytes - 5;

/// Upper bound on sub-envelopes per batch; larger counts are rejected
/// before any allocation (a batch header is attacker-controlled input).
constexpr uint32_t kMaxBatchParts = 4096;

/// \brief A framed wire message: 1 type byte + length-prefixed payload.
///
/// Everything Alex and Eve exchange goes through this framing, so the
/// adversary's transcript (the observation log) is byte-identical to what
/// a network eavesdropper in the Alex-Eve channel would record.
struct Envelope {
  MessageType type = MessageType::kError;
  Bytes payload;

  Bytes Serialize() const;
  static Result<Envelope> Parse(const Bytes& wire);
};

/// \brief Serializes sub-envelopes into a kBatchRequest / kBatchResponse
/// payload: a count followed by length-prefixed serialized envelopes. A
/// batch wraps ordinary envelopes unchanged, so the per-operation bytes
/// Eve observes (and logs) are identical to unbatched traffic.
Bytes SerializeBatchPayload(const std::vector<Envelope>& parts);

/// \brief Parses a batch payload back into its sub-envelopes. Rejects
/// truncation, trailing bytes, counts above kMaxBatchParts, and nested
/// batch envelopes (a batch is one level deep by construction).
Result<std::vector<Envelope>> ParseBatchPayload(const Bytes& payload);

/// \brief Builds a kError envelope from a Status.
Envelope MakeErrorEnvelope(const Status& status);

/// \brief Extracts the Status carried by a kError envelope. A malformed
/// error envelope yields a kDataLoss status instead.
Status ParseErrorEnvelope(const Envelope& envelope);

}  // namespace protocol
}  // namespace dbph

#endif  // DBPH_PROTOCOL_MESSAGES_H_
