#include "protocol/result_proof.h"

#include <algorithm>

#include "common/macros.h"

namespace dbph {
namespace protocol {

void ResultProof::AppendTo(Bytes* out) const {
  out->push_back(kResultProofVersion);
  AppendUint64(out, epoch);
  AppendUint64(out, leaf_count);
  out->insert(out->end(), root.begin(), root.end());
  AppendLengthPrefixed(out, root_signature);

  // A contiguous run compresses to [begin, end) — the completeness-proof
  // shape; FetchRelation's [0, n) costs 17 bytes however large n is.
  bool contiguous = true;
  for (size_t i = 1; i < positions.size(); ++i) {
    if (positions[i] != positions[i - 1] + 1) {
      contiguous = false;
      break;
    }
  }
  if (contiguous && !positions.empty()) {
    out->push_back(kProofPositionsRange);
    AppendUint64(out, positions.front());
    AppendUint64(out, positions.back() + 1);
  } else {
    out->push_back(kProofPositionsExplicit);
    AppendUint32(out, static_cast<uint32_t>(positions.size()));
    for (uint64_t position : positions) AppendUint64(out, position);
  }

  AppendUint32(out, static_cast<uint32_t>(siblings.size()));
  for (const auto& sibling : siblings) {
    out->insert(out->end(), sibling.begin(), sibling.end());
  }
}

Result<ResultProof> ResultProof::ReadFrom(ByteReader* reader,
                                          uint64_t max_positions) {
  ResultProof proof;
  DBPH_ASSIGN_OR_RETURN(Bytes version, reader->ReadRaw(1));
  if (version[0] != kResultProofVersion) {
    return Status::DataLoss("result proof: unknown version");
  }
  DBPH_ASSIGN_OR_RETURN(proof.epoch, reader->ReadUint64());
  DBPH_ASSIGN_OR_RETURN(proof.leaf_count, reader->ReadUint64());
  DBPH_ASSIGN_OR_RETURN(Bytes root_bytes, reader->ReadRaw(32));
  DBPH_ASSIGN_OR_RETURN(proof.root, crypto::MerkleTree::FromBytes(root_bytes));
  DBPH_ASSIGN_OR_RETURN(proof.root_signature, reader->ReadLengthPrefixed());
  if (!proof.root_signature.empty() && proof.root_signature.size() != 32) {
    return Status::DataLoss("result proof: signature must be empty or 32B");
  }

  DBPH_ASSIGN_OR_RETURN(Bytes kind, reader->ReadRaw(1));
  if (kind[0] == kProofPositionsRange) {
    DBPH_ASSIGN_OR_RETURN(uint64_t begin, reader->ReadUint64());
    DBPH_ASSIGN_OR_RETURN(uint64_t end, reader->ReadUint64());
    if (begin >= end || end > proof.leaf_count ||
        end - begin > max_positions) {
      return Status::DataLoss("result proof: bad position range");
    }
    proof.positions.reserve(end - begin);
    for (uint64_t p = begin; p < end; ++p) proof.positions.push_back(p);
  } else if (kind[0] == kProofPositionsExplicit) {
    DBPH_ASSIGN_OR_RETURN(uint32_t count, reader->ReadUint32());
    // The count is attacker-controlled: bound it by the caller's result
    // size AND by what the remaining bytes could physically encode
    // before reserving anything.
    if (count > max_positions || count > reader->remaining() / 8) {
      return Status::DataLoss("result proof: position count exceeds result");
    }
    proof.positions.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      DBPH_ASSIGN_OR_RETURN(uint64_t position, reader->ReadUint64());
      if (position >= proof.leaf_count ||
          (!proof.positions.empty() && position <= proof.positions.back())) {
        return Status::DataLoss("result proof: positions not increasing");
      }
      proof.positions.push_back(position);
    }
  } else {
    return Status::DataLoss("result proof: unknown position encoding");
  }

  DBPH_ASSIGN_OR_RETURN(uint32_t sibling_count, reader->ReadUint32());
  if (sibling_count > reader->remaining() / 32) {
    return Status::DataLoss("result proof: sibling count exceeds payload");
  }
  proof.siblings.reserve(sibling_count);
  for (uint32_t i = 0; i < sibling_count; ++i) {
    DBPH_ASSIGN_OR_RETURN(Bytes sibling, reader->ReadRaw(32));
    DBPH_ASSIGN_OR_RETURN(crypto::MerkleTree::Hash hash,
                          crypto::MerkleTree::FromBytes(sibling));
    proof.siblings.push_back(hash);
  }
  return proof;
}

}  // namespace protocol
}  // namespace dbph
