#ifndef DBPH_PROTOCOL_RESULT_PROOF_H_
#define DBPH_PROTOCOL_RESULT_PROOF_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/merkle.h"

namespace dbph {
namespace protocol {

/// \brief The integrity evidence attached to a result envelope
/// (kSelectResult / kFetchResult, and the delete manifest's sibling):
/// which leaves of the relation's Merkle tree the returned documents
/// are, and how they fold back into the committed root.
///
/// `epoch` counts the relation's mutations (1 at StoreRelation, +1 per
/// append/delete); a client that witnessed the history rejects a replayed
/// response from an older state by epoch/root mismatch alone.
/// `root_signature` is the data owner's HMAC over (relation, epoch,
/// root) — deposited via kAttestRoot, returned verbatim — and is empty
/// until the owner attests the current epoch. The server cannot forge
/// it: it never holds keys.
///
/// `positions` are the returned documents' leaf indices in storage
/// order, strictly increasing. On the wire a contiguous run [i, j) is
/// encoded as a range — the completeness-proof shape (FetchRelation
/// proves [0, n), i.e. "this is everything").
struct ResultProof {
  uint64_t epoch = 0;
  uint64_t leaf_count = 0;
  crypto::MerkleTree::Hash root{};
  Bytes root_signature;  ///< empty = current epoch not attested
  std::vector<uint64_t> positions;
  std::vector<crypto::MerkleTree::Hash> siblings;  ///< SubsetProof order

  void AppendTo(Bytes* out) const;

  /// Parses a proof whose claimed result set may not exceed
  /// `max_positions` (callers pass the count of documents they actually
  /// received, so a hostile proof can never make the parser allocate
  /// more than the response already did). Rejects truncation, position
  /// lists that are not strictly increasing or not below leaf_count,
  /// and sibling counts beyond what the remaining bytes physically hold.
  static Result<ResultProof> ReadFrom(ByteReader* reader,
                                      uint64_t max_positions);
};

/// Serialization constants shared with the fuzz suite.
inline constexpr uint8_t kResultProofVersion = 1;
inline constexpr uint8_t kProofPositionsExplicit = 0;
inline constexpr uint8_t kProofPositionsRange = 1;

}  // namespace protocol
}  // namespace dbph

#endif  // DBPH_PROTOCOL_RESULT_PROOF_H_
