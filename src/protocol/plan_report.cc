#include "protocol/plan_report.h"

#include <sstream>

#include "common/macros.h"

namespace dbph {
namespace protocol {

void PlanReport::AppendTo(Bytes* out) const {
  AppendLengthPrefixed(out, ToBytes(relation));
  out->push_back(static_cast<uint8_t>(access_path));
  AppendUint32(out, num_records);
  AppendUint32(out, posting_size);
  AppendUint32(out, num_shards);
  out->push_back(will_memoize ? 1 : 0);
  out->push_back(index_enabled ? 1 : 0);
  AppendUint32(out, indexed_trapdoors);
  AppendUint64(out, match_evals);
}

Result<PlanReport> PlanReport::ReadFrom(ByteReader* reader) {
  PlanReport report;
  DBPH_ASSIGN_OR_RETURN(Bytes name, reader->ReadLengthPrefixed());
  report.relation = ::dbph::ToString(name);  // member ToString shadows it
  DBPH_ASSIGN_OR_RETURN(Bytes path, reader->ReadRaw(1));
  if (path[0] > static_cast<uint8_t>(PlanAccessPath::kIndexLookup)) {
    return Status::DataLoss("unknown access path in plan report");
  }
  report.access_path = static_cast<PlanAccessPath>(path[0]);
  DBPH_ASSIGN_OR_RETURN(report.num_records, reader->ReadUint32());
  DBPH_ASSIGN_OR_RETURN(report.posting_size, reader->ReadUint32());
  DBPH_ASSIGN_OR_RETURN(report.num_shards, reader->ReadUint32());
  DBPH_ASSIGN_OR_RETURN(Bytes memoize, reader->ReadRaw(1));
  if (memoize[0] > 1) return Status::DataLoss("malformed plan report");
  report.will_memoize = memoize[0] == 1;
  DBPH_ASSIGN_OR_RETURN(Bytes enabled, reader->ReadRaw(1));
  if (enabled[0] > 1) return Status::DataLoss("malformed plan report");
  report.index_enabled = enabled[0] == 1;
  DBPH_ASSIGN_OR_RETURN(report.indexed_trapdoors, reader->ReadUint32());
  DBPH_ASSIGN_OR_RETURN(report.match_evals, reader->ReadUint64());
  return report;
}

std::string PlanReport::ToString() const {
  std::ostringstream out;
  if (access_path == PlanAccessPath::kIndexLookup) {
    out << "IndexLookup on " << relation << "  (trapdoor posting list: "
        << posting_size << " of " << num_records << " documents fetched)";
  } else {
    out << "FullScan on " << relation << "  (" << num_records
        << " documents across " << num_shards << " shard(s), " << match_evals
        << " PRF evaluation(s)"
        << (will_memoize ? ", result will be memoized" : "") << ")";
  }
  out << "\n  trapdoor index: "
      << (index_enabled ? "enabled" : "disabled") << ", "
      << indexed_trapdoors << " trapdoor(s) memoized for this relation";
  return out.str();
}

}  // namespace protocol
}  // namespace dbph
