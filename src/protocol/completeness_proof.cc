#include "protocol/completeness_proof.h"

#include "common/macros.h"

namespace dbph {
namespace protocol {

namespace {

using crypto::SearchTree;

Result<SearchTree::Hash> ReadHash(ByteReader* reader) {
  DBPH_ASSIGN_OR_RETURN(Bytes raw, reader->ReadRaw(32));
  return crypto::MerkleTree::FromBytes(raw);
}

void AppendHash(Bytes* out, const SearchTree::Hash& hash) {
  out->insert(out->end(), hash.begin(), hash.end());
}

/// A sibling path for a `tree_size`-leaf tree is at most ceil(log2 n)
/// hashes; 64 is beyond any tree this protocol can address.
constexpr uint32_t kMaxPathLength = 64;

Result<std::vector<SearchTree::Hash>> ReadPath(ByteReader* reader) {
  DBPH_ASSIGN_OR_RETURN(uint32_t count, reader->ReadUint32());
  if (count > kMaxPathLength || count > reader->remaining() / 32) {
    return Status::DataLoss("completeness proof: path length exceeds payload");
  }
  std::vector<SearchTree::Hash> path;
  path.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    DBPH_ASSIGN_OR_RETURN(SearchTree::Hash hash, ReadHash(reader));
    path.push_back(hash);
  }
  return path;
}

void AppendPath(Bytes* out, const std::vector<SearchTree::Hash>& path) {
  AppendUint32(out, static_cast<uint32_t>(path.size()));
  for (const auto& hash : path) AppendHash(out, hash);
}

}  // namespace

void CompletenessProof::AppendTo(Bytes* out) const {
  out->push_back(kCompletenessProofVersion);
  AppendUint64(out, epoch);
  AppendUint64(out, tree_size);
  AppendHash(out, search_root);
  AppendLengthPrefixed(out, root_signature);
  out->push_back(kind);
  if (kind == kCompletenessMember) {
    AppendUint64(out, index);
    AppendUint32(out, static_cast<uint32_t>(positions.size()));
    for (uint64_t position : positions) AppendUint64(out, position);
    AppendPath(out, path);
  } else {
    out->push_back(static_cast<uint8_t>(neighbors.size()));
    for (const auto& neighbor : neighbors) {
      AppendUint64(out, neighbor.index);
      AppendHash(out, neighbor.tag);
      AppendHash(out, neighbor.posting_digest);
      AppendPath(out, neighbor.path);
    }
  }
}

Result<CompletenessProof> CompletenessProof::ReadFrom(
    ByteReader* reader, uint64_t max_positions, uint64_t position_limit) {
  CompletenessProof proof;
  DBPH_ASSIGN_OR_RETURN(Bytes version, reader->ReadRaw(1));
  if (version[0] != kCompletenessProofVersion) {
    return Status::DataLoss("completeness proof: unknown version");
  }
  DBPH_ASSIGN_OR_RETURN(proof.epoch, reader->ReadUint64());
  DBPH_ASSIGN_OR_RETURN(proof.tree_size, reader->ReadUint64());
  DBPH_ASSIGN_OR_RETURN(proof.search_root, ReadHash(reader));
  DBPH_ASSIGN_OR_RETURN(proof.root_signature, reader->ReadLengthPrefixed());
  if (!proof.root_signature.empty() && proof.root_signature.size() != 32) {
    return Status::DataLoss(
        "completeness proof: signature must be empty or 32B");
  }
  DBPH_ASSIGN_OR_RETURN(Bytes kind, reader->ReadRaw(1));
  proof.kind = kind[0];
  if (proof.kind == kCompletenessMember) {
    DBPH_ASSIGN_OR_RETURN(proof.index, reader->ReadUint64());
    if (proof.index >= proof.tree_size) {
      return Status::DataLoss("completeness proof: index beyond tree");
    }
    DBPH_ASSIGN_OR_RETURN(uint32_t count, reader->ReadUint32());
    // The committed posting list is attacker-controlled: an honest one
    // is a subset of the returned rows, so bound it by the result size
    // AND by what the remaining bytes physically encode.
    if (count == 0) {
      return Status::DataLoss("completeness proof: empty posting list");
    }
    if (count > max_positions || count > reader->remaining() / 8) {
      return Status::DataLoss(
          "completeness proof: posting count exceeds result");
    }
    proof.positions.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      DBPH_ASSIGN_OR_RETURN(uint64_t position, reader->ReadUint64());
      if (position >= position_limit ||
          (!proof.positions.empty() && position <= proof.positions.back())) {
        return Status::DataLoss(
            "completeness proof: positions not increasing");
      }
      proof.positions.push_back(position);
    }
    DBPH_ASSIGN_OR_RETURN(proof.path, ReadPath(reader));
  } else if (proof.kind == kCompletenessAbsent) {
    DBPH_ASSIGN_OR_RETURN(Bytes count, reader->ReadRaw(1));
    if (count[0] > 2) {
      return Status::DataLoss("completeness proof: neighbor count beyond 2");
    }
    proof.neighbors.reserve(count[0]);
    for (uint8_t i = 0; i < count[0]; ++i) {
      SearchTree::Neighbor neighbor;
      DBPH_ASSIGN_OR_RETURN(neighbor.index, reader->ReadUint64());
      if (neighbor.index >= proof.tree_size) {
        return Status::DataLoss(
            "completeness proof: neighbor index beyond tree");
      }
      DBPH_ASSIGN_OR_RETURN(neighbor.tag, ReadHash(reader));
      DBPH_ASSIGN_OR_RETURN(neighbor.posting_digest, ReadHash(reader));
      DBPH_ASSIGN_OR_RETURN(neighbor.path, ReadPath(reader));
      proof.neighbors.push_back(std::move(neighbor));
    }
  } else {
    return Status::DataLoss("completeness proof: unknown kind");
  }
  return proof;
}

void AppendSearchEntries(const std::vector<SearchTree::Entry>& entries,
                         Bytes* out) {
  out->push_back(kSearchSectionVersion);
  AppendUint32(out, static_cast<uint32_t>(entries.size()));
  for (const auto& entry : entries) {
    AppendHash(out, entry.tag);
    AppendUint32(out, static_cast<uint32_t>(entry.positions.size()));
    for (uint64_t position : entry.positions) AppendUint64(out, position);
  }
}

Result<std::vector<SearchTree::Entry>> ReadSearchEntries(
    ByteReader* reader, uint64_t position_limit) {
  DBPH_ASSIGN_OR_RETURN(Bytes version, reader->ReadRaw(1));
  if (version[0] != kSearchSectionVersion) {
    return Status::DataLoss("search section: unknown version");
  }
  DBPH_ASSIGN_OR_RETURN(uint32_t entry_count, reader->ReadUint32());
  // Smallest possible entry: 32B tag + 4B count (+ at least one 8B
  // position, but 36 already bounds the reserve safely).
  if (entry_count > reader->remaining() / 36) {
    return Status::DataLoss("search section: entry count exceeds payload");
  }
  std::vector<SearchTree::Entry> entries;
  entries.reserve(entry_count);
  for (uint32_t i = 0; i < entry_count; ++i) {
    SearchTree::Entry entry;
    DBPH_ASSIGN_OR_RETURN(entry.tag, ReadHash(reader));
    if (!entries.empty() && !(entries.back().tag < entry.tag)) {
      return Status::DataLoss("search section: tags not strictly increasing");
    }
    DBPH_ASSIGN_OR_RETURN(uint32_t position_count, reader->ReadUint32());
    if (position_count == 0) {
      return Status::DataLoss("search section: empty posting list");
    }
    if (position_count > reader->remaining() / 8) {
      return Status::DataLoss(
          "search section: position count exceeds payload");
    }
    entry.positions.reserve(position_count);
    for (uint32_t j = 0; j < position_count; ++j) {
      DBPH_ASSIGN_OR_RETURN(uint64_t position, reader->ReadUint64());
      if (position >= position_limit ||
          (!entry.positions.empty() && position <= entry.positions.back())) {
        return Status::DataLoss(
            "search section: positions not increasing in range");
      }
      entry.positions.push_back(position);
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace protocol
}  // namespace dbph
