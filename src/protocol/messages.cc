#include "protocol/messages.h"

#include <algorithm>

#include "common/macros.h"

namespace dbph {
namespace protocol {

Bytes Envelope::Serialize() const {
  Bytes out;
  out.push_back(static_cast<uint8_t>(type));
  AppendLengthPrefixed(&out, payload);
  return out;
}

Result<Envelope> Envelope::Parse(const Bytes& wire) {
  ByteReader reader(wire);
  DBPH_ASSIGN_OR_RETURN(Bytes type_byte, reader.ReadRaw(1));
  if (type_byte[0] < 1 || type_byte[0] > kMaxMessageType) {
    return Status::DataLoss("unknown message type");
  }
  Envelope env;
  env.type = static_cast<MessageType>(type_byte[0]);
  DBPH_ASSIGN_OR_RETURN(uint32_t length, reader.ReadUint32());
  if (length > kMaxEnvelopePayloadBytes) {
    return Status::InvalidArgument("envelope payload exceeds kMaxFrameBytes");
  }
  DBPH_ASSIGN_OR_RETURN(env.payload, reader.ReadRaw(length));
  if (!reader.AtEnd()) {
    return Status::DataLoss("trailing bytes after message");
  }
  return env;
}

Bytes SerializeBatchPayload(const std::vector<Envelope>& parts) {
  Bytes payload;
  AppendUint32(&payload, static_cast<uint32_t>(parts.size()));
  for (const Envelope& part : parts) {
    AppendLengthPrefixed(&payload, part.Serialize());
  }
  return payload;
}

Result<std::vector<Envelope>> ParseBatchPayload(const Bytes& payload) {
  ByteReader reader(payload);
  DBPH_ASSIGN_OR_RETURN(uint32_t count, reader.ReadUint32());
  if (count == 0) {
    return Status::InvalidArgument("empty batch");
  }
  if (count > kMaxBatchParts) {
    return Status::InvalidArgument("batch exceeds kMaxBatchParts");
  }
  std::vector<Envelope> parts;
  parts.reserve(std::min<size_t>(count, reader.remaining() / 4));
  for (uint32_t i = 0; i < count; ++i) {
    DBPH_ASSIGN_OR_RETURN(Bytes wire, reader.ReadLengthPrefixed());
    DBPH_ASSIGN_OR_RETURN(Envelope part, Envelope::Parse(wire));
    if (part.type == MessageType::kBatchRequest ||
        part.type == MessageType::kBatchResponse) {
      return Status::InvalidArgument("nested batch envelope");
    }
    parts.push_back(std::move(part));
  }
  if (!reader.AtEnd()) {
    return Status::DataLoss("trailing bytes after batch");
  }
  return parts;
}

Envelope MakeErrorEnvelope(const Status& status) {
  Envelope env;
  env.type = MessageType::kError;
  env.payload.push_back(static_cast<uint8_t>(status.code()));
  AppendLengthPrefixed(&env.payload, ToBytes(status.message()));
  return env;
}

Status ParseErrorEnvelope(const Envelope& envelope) {
  if (envelope.type != MessageType::kError) {
    return Status::InvalidArgument("not an error envelope");
  }
  ByteReader reader(envelope.payload);
  auto code = reader.ReadRaw(1);
  if (!code.ok()) return Status::DataLoss("malformed error envelope");
  auto message = reader.ReadLengthPrefixed();
  if (!message.ok()) return Status::DataLoss("malformed error envelope");
  return Status(static_cast<StatusCode>((*code)[0]), ToString(*message));
}

}  // namespace protocol
}  // namespace dbph
