#ifndef DBPH_PROTOCOL_PLAN_REPORT_H_
#define DBPH_PROTOCOL_PLAN_REPORT_H_

#include <string>

#include "common/bytes.h"
#include "common/result.h"

namespace dbph {
namespace protocol {

/// Which access path the server's planner chose for a query. Wire-level
/// mirror of server::planner::AccessPath (the protocol layer cannot
/// depend on the server).
enum class PlanAccessPath : uint8_t {
  kFullScan = 0,      ///< sharded trapdoor scan over every stored document
  kIndexLookup = 1,   ///< trapdoor posting-list hit: fetch matched ids only
};

/// \brief The payload of a kExplainResult envelope: how the server would
/// execute a select right now, without executing it.
///
/// Everything in here is derived from data Eve already holds (her
/// ciphertext, her memoized posting lists, her shard configuration), so
/// reporting it to the client reveals nothing the client's own query
/// history did not already determine.
struct PlanReport {
  std::string relation;
  PlanAccessPath access_path = PlanAccessPath::kFullScan;
  /// Documents a full scan of this relation touches.
  uint32_t num_records = 0;
  /// Documents the index path fetches (posting-list size); only
  /// meaningful when access_path == kIndexLookup.
  uint32_t posting_size = 0;
  /// Shards a full scan splits into.
  uint32_t num_shards = 0;
  /// True when executing this plan would seed the trapdoor index (a scan
  /// whose result the server will memoize).
  bool will_memoize = false;
  /// False when the server runs with the trapdoor index disabled.
  bool index_enabled = false;
  /// Trapdoors currently memoized for this relation.
  uint32_t indexed_trapdoors = 0;
  /// PRF evaluations executing this plan performs: the relation's total
  /// stored word slots on the scan path (every slot matched once), 0 on
  /// the index path (posting fetches evaluate nothing).
  uint64_t match_evals = 0;

  void AppendTo(Bytes* out) const;
  static Result<PlanReport> ReadFrom(ByteReader* reader);

  /// Human-readable EXPLAIN output for the REPL and examples.
  std::string ToString() const;
};

}  // namespace protocol
}  // namespace dbph

#endif  // DBPH_PROTOCOL_PLAN_REPORT_H_
