#ifndef DBPH_PROTOCOL_COMPLETENESS_PROOF_H_
#define DBPH_PROTOCOL_COMPLETENESS_PROOF_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/search_tree.h"

namespace dbph {
namespace protocol {

/// \brief The completeness evidence attached to a select response after
/// the ResultProof: what the relation's authenticated search structure
/// (crypto::SearchTree — the Merkle tree over sorted trapdoor tags)
/// committed for the queried tag.
///
/// Two shapes:
///  - kCompletenessMember: the tag is committed; `index`, `positions`
///    (the committed posting list — row-tree leaf positions) and `path`
///    prove its entry against `search_root`. The verifier demands the
///    committed positions be a subset of the positions the ResultProof
///    returned (a superset is legal: SWP false positives match rows the
///    owner never indexed; a missing committed position is the
///    under-reporting attack this proof exists to catch).
///  - kCompletenessAbsent: the tag is not committed; `neighbors` carry
///    the sorted-adjacency non-membership proof. An absent tag with a
///    non-empty result is legal (false positives again); a committed tag
///    answered with an empty result is always a lie — SWP has no false
///    negatives.
///
/// `epoch` must equal the ResultProof's epoch (one mutation counter
/// drives both trees); `root_signature` is the owner's HMAC over
/// (relation, epoch, search_root) under the "dbph-search-root-v1"
/// domain — deposited via kAttestRoot alongside the row-root signature,
/// empty until the owner attests the current epoch.
struct CompletenessProof {
  uint64_t epoch = 0;
  uint64_t tree_size = 0;
  crypto::SearchTree::Hash search_root{};
  Bytes root_signature;  ///< empty = current epoch not attested
  uint8_t kind = 0;      ///< kCompletenessAbsent / kCompletenessMember

  // kCompletenessMember:
  uint64_t index = 0;
  std::vector<uint64_t> positions;  ///< committed posting list
  std::vector<crypto::SearchTree::Hash> path;

  // kCompletenessAbsent:
  std::vector<crypto::SearchTree::Neighbor> neighbors;

  void AppendTo(Bytes* out) const;

  /// Parses fail-closed with every allocation bounded by what the
  /// payload physically holds: the committed posting list may not
  /// exceed `max_positions` (callers pass the returned document count —
  /// committed ⊆ returned on any honest response), positions must be
  /// strictly increasing and < `position_limit` (the row-tree leaf
  /// count from the ResultProof parsed just before), path/neighbor
  /// counts are bounded by reader->remaining().
  static Result<CompletenessProof> ReadFrom(ByteReader* reader,
                                            uint64_t max_positions,
                                            uint64_t position_limit);
};

/// Serialization constants shared with the fuzz suite.
inline constexpr uint8_t kCompletenessProofVersion = 1;
inline constexpr uint8_t kCompletenessAbsent = 0;
inline constexpr uint8_t kCompletenessMember = 1;
inline constexpr uint8_t kSearchSectionVersion = 1;

/// The search-entry section: the owner-computed (tag → posting list)
/// map in sorted tag order. Rides as optional trailing payload on
/// kStoreRelation (the whole structure), kAppendTuples (the delta for
/// the appended rows), kFetchResult (the bootstrap dump SyncIntegrity
/// consumes) and in SerializeState v3 images.
void AppendSearchEntries(const std::vector<crypto::SearchTree::Entry>& entries,
                         Bytes* out);

/// Fail-closed parse: entry/position counts bounded by the remaining
/// payload, tags strictly increasing, positions strictly increasing and
/// < `position_limit` (pass the relation's document count when known,
/// ~0ull when the range is validated downstream, as append deltas are).
Result<std::vector<crypto::SearchTree::Entry>> ReadSearchEntries(
    ByteReader* reader, uint64_t position_limit);

}  // namespace protocol
}  // namespace dbph

#endif  // DBPH_PROTOCOL_COMPLETENESS_PROOF_H_
