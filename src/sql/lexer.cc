#include "sql/lexer.h"

#include <cctype>

namespace dbph {
namespace sql {

namespace {

bool IsKeyword(const std::string& upper) {
  return upper == "SELECT" || upper == "FROM" || upper == "WHERE" ||
         upper == "AND";
}

std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(
                        static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < sql.size()) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.position = i;
    if (c == '*') {
      token.type = TokenType::kStar;
      token.text = "*";
      ++i;
    } else if (c == '=') {
      token.type = TokenType::kEquals;
      token.text = "=";
      ++i;
    } else if (c == ',') {
      token.type = TokenType::kComma;
      token.text = ",";
      ++i;
    } else if (c == ';') {
      token.type = TokenType::kSemicolon;
      token.text = ";";
      ++i;
    } else if (c == '\'') {
      // Single-quoted string; '' inside is an escaped quote.
      std::string value;
      ++i;
      bool closed = false;
      while (i < sql.size()) {
        if (sql[i] == '\'') {
          if (i + 1 < sql.size() && sql[i + 1] == '\'') {
            value += '\'';
            i += 2;
          } else {
            ++i;
            closed = true;
            break;
          }
        } else {
          value += sql[i++];
        }
      }
      if (!closed) {
        return Status::InvalidArgument(
            "unterminated string literal at position " +
            std::to_string(token.position));
      }
      token.type = TokenType::kString;
      token.text = std::move(value);
    } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
      size_t start = i;
      if (c == '-') ++i;
      bool has_dot = false;
      while (i < sql.size() &&
             (std::isdigit(static_cast<unsigned char>(sql[i])) ||
              sql[i] == '.')) {
        if (sql[i] == '.') {
          if (has_dot) break;
          has_dot = true;
        }
        ++i;
      }
      token.text = sql.substr(start, i - start);
      if (token.text == "-") {
        return Status::InvalidArgument("stray '-' at position " +
                                       std::to_string(start));
      }
      token.type = has_dot ? TokenType::kDouble : TokenType::kInteger;
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < sql.size() &&
             (std::isalnum(static_cast<unsigned char>(sql[i])) ||
              sql[i] == '_')) {
        ++i;
      }
      std::string word = sql.substr(start, i - start);
      std::string upper = ToUpper(word);
      if (IsKeyword(upper)) {
        token.type = TokenType::kKeyword;
        token.text = upper;
      } else {
        token.type = TokenType::kIdentifier;
        token.text = std::move(word);
      }
    } else {
      return Status::InvalidArgument("unexpected character '" +
                                     std::string(1, c) + "' at position " +
                                     std::to_string(i));
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = sql.size();
  tokens.push_back(end);
  return tokens;
}

}  // namespace sql
}  // namespace dbph
