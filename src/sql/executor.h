#ifndef DBPH_SQL_EXECUTOR_H_
#define DBPH_SQL_EXECUTOR_H_

#include <string>

#include "client/client.h"
#include "common/result.h"
#include "relation/relation.h"
#include "sql/parser.h"

namespace dbph {
namespace sql {

/// \brief Types a parsed literal against the attribute it is compared to.
/// An integer literal against an int64 column becomes Value::Int, etc.;
/// mismatches (string literal vs int column) are errors.
Result<rel::Value> TypeLiteral(const Literal& literal,
                               const rel::Attribute& attribute);

/// \brief Executes a statement against an outsourced database through the
/// client: parses, types the literals against the outsourced schema,
/// encrypts the query, and returns the exact (filtered) result.
Result<rel::Relation> ExecuteSql(client::Client* client,
                                 const std::string& statement);

/// \brief True when the statement opens with the EXPLAIN keyword
/// (case-insensitive, any whitespace around it) — how the REPL decides
/// to route a line to ExplainSql instead of ExecuteSql.
bool IsExplainStatement(const std::string& statement);

/// \brief `EXPLAIN SELECT ...`: parses and types exactly like ExecuteSql
/// but asks the server for its plan per conjunction term instead of
/// executing — one PlanReport per term (each term is its own remote
/// select in the conjunction strategy), rendered as text for the REPL.
/// Accepts the statement with or without the leading EXPLAIN keyword.
Result<std::string> ExplainSql(client::Client* client,
                               const std::string& statement);

/// \brief Renders a result relation as an aligned text table for the REPL
/// and the examples.
std::string FormatResult(const rel::Relation& relation);

}  // namespace sql
}  // namespace dbph

#endif  // DBPH_SQL_EXECUTOR_H_
