#ifndef DBPH_SQL_EXECUTOR_H_
#define DBPH_SQL_EXECUTOR_H_

#include <string>

#include "client/client.h"
#include "common/result.h"
#include "relation/relation.h"
#include "sql/parser.h"

namespace dbph {
namespace sql {

/// \brief Types a parsed literal against the attribute it is compared to.
/// An integer literal against an int64 column becomes Value::Int, etc.;
/// mismatches (string literal vs int column) are errors.
Result<rel::Value> TypeLiteral(const Literal& literal,
                               const rel::Attribute& attribute);

/// \brief Executes a statement against an outsourced database through the
/// client: parses, types the literals against the outsourced schema,
/// encrypts the query, and returns the exact (filtered) result.
Result<rel::Relation> ExecuteSql(client::Client* client,
                                 const std::string& statement);

/// \brief Renders a result relation as an aligned text table for the REPL
/// and the examples.
std::string FormatResult(const rel::Relation& relation);

}  // namespace sql
}  // namespace dbph

#endif  // DBPH_SQL_EXECUTOR_H_
