#include "sql/parser.h"

#include "common/macros.h"
#include "sql/lexer.h"

namespace dbph {
namespace sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStatement> Parse() {
    DBPH_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    if (Peek().type != TokenType::kStar) {
      return Error("only 'SELECT *' is supported (a database PH preserving "
                   "exact selects returns whole tuples)");
    }
    Advance();
    DBPH_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected table name");
    }
    SelectStatement statement;
    statement.table = Peek().text;
    Advance();

    if (Peek().type == TokenType::kKeyword && Peek().text == "WHERE") {
      Advance();
      DBPH_RETURN_IF_ERROR(ParseCondition(&statement));
      while (Peek().type == TokenType::kKeyword && Peek().text == "AND") {
        Advance();
        DBPH_RETURN_IF_ERROR(ParseCondition(&statement));
      }
    }
    if (Peek().type == TokenType::kSemicolon) Advance();
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing tokens ('" + Peek().text + "')");
    }
    return statement;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " at position " +
                                   std::to_string(Peek().position));
  }

  Status ExpectKeyword(const std::string& keyword) {
    if (Peek().type != TokenType::kKeyword || Peek().text != keyword) {
      return Error("expected " + keyword);
    }
    Advance();
    return Status::OK();
  }

  Status ParseCondition(SelectStatement* statement) {
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected attribute name");
    }
    Condition condition;
    condition.attribute = Peek().text;
    Advance();
    if (Peek().type != TokenType::kEquals) {
      return Error("only equality predicates are supported (exact selects)");
    }
    Advance();
    switch (Peek().type) {
      case TokenType::kString:
        condition.literal.kind = Literal::Kind::kString;
        break;
      case TokenType::kInteger:
        condition.literal.kind = Literal::Kind::kInteger;
        break;
      case TokenType::kDouble:
        condition.literal.kind = Literal::Kind::kDouble;
        break;
      case TokenType::kIdentifier:
        // Unquoted true/false read as booleans.
        if (Peek().text == "true" || Peek().text == "false") {
          condition.literal.kind = Literal::Kind::kBool;
          break;
        }
        return Error("unquoted value '" + Peek().text +
                     "' (string literals need single quotes)");
      default:
        return Error("expected a literal value");
    }
    condition.literal.text = Peek().text;
    Advance();
    statement->conditions.push_back(std::move(condition));
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStatement> ParseSelect(const std::string& sql) {
  DBPH_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace sql
}  // namespace dbph
