#ifndef DBPH_SQL_LEXER_H_
#define DBPH_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace dbph {
namespace sql {

enum class TokenType {
  kKeyword,     ///< SELECT, FROM, WHERE, AND (case-insensitive)
  kIdentifier,  ///< table / attribute names
  kString,      ///< 'single quoted' ('' escapes a quote)
  kInteger,
  kDouble,
  kStar,
  kEquals,
  kComma,
  kSemicolon,
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   ///< raw text (keywords upper-cased)
  size_t position = 0;  ///< byte offset, for error messages
};

/// \brief Tokenizes one SQL statement. Unknown characters and unterminated
/// strings are reported with their position.
Result<std::vector<Token>> Lex(const std::string& sql);

}  // namespace sql
}  // namespace dbph

#endif  // DBPH_SQL_LEXER_H_
