#ifndef DBPH_SQL_PARSER_H_
#define DBPH_SQL_PARSER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace dbph {
namespace sql {

/// \brief A literal as written in SQL, before schema-driven typing.
struct Literal {
  enum class Kind { kString, kInteger, kDouble, kBool };
  Kind kind = Kind::kString;
  std::string text;
};

/// \brief One `attribute = literal` condition.
struct Condition {
  std::string attribute;
  Literal literal;
};

/// \brief `SELECT * FROM table WHERE a = v [AND b = w ...];`
///
/// The grammar is deliberately the paper's query class: exact selects
/// (with the client-side conjunction extension). Projections, ranges,
/// joins and aggregates are out of scope of a database PH preserving
/// exact selects, and the parser says so explicitly rather than
/// accepting-and-ignoring.
struct SelectStatement {
  std::string table;
  std::vector<Condition> conditions;  ///< empty = "no WHERE" (rejected by
                                      ///< the outsourced executor)
};

/// \brief Parses a single statement.
Result<SelectStatement> ParseSelect(const std::string& sql);

}  // namespace sql
}  // namespace dbph

#endif  // DBPH_SQL_PARSER_H_
