#include "sql/executor.h"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <string_view>

#include "common/macros.h"

namespace dbph {
namespace sql {

Result<rel::Value> TypeLiteral(const Literal& literal,
                               const rel::Attribute& attribute) {
  using rel::Value;
  using rel::ValueType;
  switch (attribute.type) {
    case ValueType::kString:
      if (literal.kind != Literal::Kind::kString) {
        return Status::InvalidArgument(
            "attribute '" + attribute.name +
            "' is a string; quote the literal");
      }
      return Value::Str(literal.text);
    case ValueType::kInt64:
      if (literal.kind != Literal::Kind::kInteger) {
        return Status::InvalidArgument("attribute '" + attribute.name +
                                       "' expects an integer literal");
      }
      return Value::Parse(ValueType::kInt64, literal.text);
    case ValueType::kDouble:
      if (literal.kind != Literal::Kind::kDouble &&
          literal.kind != Literal::Kind::kInteger) {
        return Status::InvalidArgument("attribute '" + attribute.name +
                                       "' expects a numeric literal");
      }
      return Value::Parse(ValueType::kDouble, literal.text);
    case rel::ValueType::kBool:
      if (literal.kind != Literal::Kind::kBool) {
        return Status::InvalidArgument("attribute '" + attribute.name +
                                       "' expects true or false");
      }
      return Value::Boolean(literal.text == "true");
  }
  return Status::Internal("unreachable");
}

namespace {

/// Parse + schema-type a statement: the front half shared by execution
/// and EXPLAIN (both must agree on what the statement means).
struct TypedSelect {
  std::string table;
  std::vector<std::pair<std::string, rel::Value>> terms;
};

Result<TypedSelect> TypeSelect(client::Client* client,
                               const std::string& statement) {
  DBPH_ASSIGN_OR_RETURN(SelectStatement select, ParseSelect(statement));
  if (select.conditions.empty()) {
    return Status::InvalidArgument(
        "SELECT without WHERE cannot run on the encrypted server: the "
        "database PH preserves exact selects only");
  }
  DBPH_ASSIGN_OR_RETURN(const core::DatabasePh* ph,
                        client->SchemeFor(select.table));
  const rel::Schema& schema = ph->schema();

  TypedSelect typed;
  typed.table = select.table;
  for (const auto& condition : select.conditions) {
    DBPH_ASSIGN_OR_RETURN(size_t attr, schema.IndexOf(condition.attribute));
    DBPH_ASSIGN_OR_RETURN(
        rel::Value value,
        TypeLiteral(condition.literal, schema.attribute(attr)));
    typed.terms.emplace_back(condition.attribute, std::move(value));
  }
  return typed;
}

constexpr std::string_view kWhitespace = " \t\r\n";
constexpr std::string_view kExplainKeyword = "EXPLAIN";

/// Offset just past the leading EXPLAIN keyword (case-insensitive, any
/// surrounding whitespace), or npos when the statement does not open
/// with it. The single source of truth for detection and stripping.
size_t ExplainPrefixEnd(const std::string& statement) {
  size_t begin = statement.find_first_not_of(kWhitespace);
  if (begin == std::string::npos) return std::string::npos;
  if (statement.size() - begin <= kExplainKeyword.size()) {
    return std::string::npos;
  }
  for (size_t i = 0; i < kExplainKeyword.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(statement[begin + i])) !=
        kExplainKeyword[i]) {
      return std::string::npos;
    }
  }
  size_t end = begin + kExplainKeyword.size();
  if (kWhitespace.find(statement[end]) == std::string_view::npos) {
    return std::string::npos;
  }
  return end;
}

/// Strips an optional leading EXPLAIN keyword (case-insensitive).
std::string StripExplainKeyword(const std::string& statement) {
  size_t end = ExplainPrefixEnd(statement);
  return end == std::string::npos ? statement : statement.substr(end);
}

}  // namespace

bool IsExplainStatement(const std::string& statement) {
  return ExplainPrefixEnd(statement) != std::string::npos;
}

Result<rel::Relation> ExecuteSql(client::Client* client,
                                 const std::string& statement) {
  DBPH_ASSIGN_OR_RETURN(TypedSelect typed, TypeSelect(client, statement));
  if (typed.terms.size() == 1) {
    return client->Select(typed.table, typed.terms[0].first,
                          typed.terms[0].second);
  }
  return client->SelectConjunction(typed.table, typed.terms);
}

Result<std::string> ExplainSql(client::Client* client,
                               const std::string& statement) {
  DBPH_ASSIGN_OR_RETURN(
      TypedSelect typed,
      TypeSelect(client, StripExplainKeyword(statement)));
  std::ostringstream out;
  for (size_t i = 0; i < typed.terms.size(); ++i) {
    DBPH_ASSIGN_OR_RETURN(
        protocol::PlanReport report,
        client->Explain(typed.table, typed.terms[i].first,
                        typed.terms[i].second));
    if (typed.terms.size() > 1) {
      out << "term " << (i + 1) << " (" << typed.terms[i].first << "): ";
    }
    out << report.ToString() << "\n";
  }
  return out.str();
}

std::string FormatResult(const rel::Relation& relation) {
  const rel::Schema& schema = relation.schema();
  const size_t cols = schema.num_attributes();

  std::vector<size_t> widths(cols);
  for (size_t c = 0; c < cols; ++c) {
    widths[c] = schema.attribute(c).name.size();
  }
  std::vector<std::vector<std::string>> rows;
  for (const auto& tuple : relation.tuples()) {
    std::vector<std::string> row;
    for (size_t c = 0; c < cols; ++c) {
      row.push_back(tuple.at(c).ToDisplayString());
      widths[c] = std::max(widths[c], row.back().size());
    }
    rows.push_back(std::move(row));
  }

  std::ostringstream out;
  auto rule = [&] {
    out << "+";
    for (size_t c = 0; c < cols; ++c) {
      out << std::string(widths[c] + 2, '-') << "+";
    }
    out << "\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (size_t c = 0; c < cols; ++c) {
      out << " " << cells[c] << std::string(widths[c] - cells[c].size(), ' ')
          << " |";
    }
    out << "\n";
  };
  rule();
  std::vector<std::string> header;
  for (size_t c = 0; c < cols; ++c) header.push_back(schema.attribute(c).name);
  line(header);
  rule();
  for (const auto& row : rows) line(row);
  rule();
  out << rows.size() << " row(s)\n";
  return out.str();
}

}  // namespace sql
}  // namespace dbph
