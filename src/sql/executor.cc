#include "sql/executor.h"

#include <algorithm>
#include <sstream>

#include "common/macros.h"

namespace dbph {
namespace sql {

Result<rel::Value> TypeLiteral(const Literal& literal,
                               const rel::Attribute& attribute) {
  using rel::Value;
  using rel::ValueType;
  switch (attribute.type) {
    case ValueType::kString:
      if (literal.kind != Literal::Kind::kString) {
        return Status::InvalidArgument(
            "attribute '" + attribute.name +
            "' is a string; quote the literal");
      }
      return Value::Str(literal.text);
    case ValueType::kInt64:
      if (literal.kind != Literal::Kind::kInteger) {
        return Status::InvalidArgument("attribute '" + attribute.name +
                                       "' expects an integer literal");
      }
      return Value::Parse(ValueType::kInt64, literal.text);
    case ValueType::kDouble:
      if (literal.kind != Literal::Kind::kDouble &&
          literal.kind != Literal::Kind::kInteger) {
        return Status::InvalidArgument("attribute '" + attribute.name +
                                       "' expects a numeric literal");
      }
      return Value::Parse(ValueType::kDouble, literal.text);
    case rel::ValueType::kBool:
      if (literal.kind != Literal::Kind::kBool) {
        return Status::InvalidArgument("attribute '" + attribute.name +
                                       "' expects true or false");
      }
      return Value::Boolean(literal.text == "true");
  }
  return Status::Internal("unreachable");
}

Result<rel::Relation> ExecuteSql(client::Client* client,
                                 const std::string& statement) {
  DBPH_ASSIGN_OR_RETURN(SelectStatement select, ParseSelect(statement));
  if (select.conditions.empty()) {
    return Status::InvalidArgument(
        "SELECT without WHERE cannot run on the encrypted server: the "
        "database PH preserves exact selects only");
  }
  DBPH_ASSIGN_OR_RETURN(const core::DatabasePh* ph,
                        client->SchemeFor(select.table));
  const rel::Schema& schema = ph->schema();

  std::vector<std::pair<std::string, rel::Value>> terms;
  for (const auto& condition : select.conditions) {
    DBPH_ASSIGN_OR_RETURN(size_t attr, schema.IndexOf(condition.attribute));
    DBPH_ASSIGN_OR_RETURN(
        rel::Value value,
        TypeLiteral(condition.literal, schema.attribute(attr)));
    terms.emplace_back(condition.attribute, std::move(value));
  }
  if (terms.size() == 1) {
    return client->Select(select.table, terms[0].first, terms[0].second);
  }
  return client->SelectConjunction(select.table, terms);
}

std::string FormatResult(const rel::Relation& relation) {
  const rel::Schema& schema = relation.schema();
  const size_t cols = schema.num_attributes();

  std::vector<size_t> widths(cols);
  for (size_t c = 0; c < cols; ++c) {
    widths[c] = schema.attribute(c).name.size();
  }
  std::vector<std::vector<std::string>> rows;
  for (const auto& tuple : relation.tuples()) {
    std::vector<std::string> row;
    for (size_t c = 0; c < cols; ++c) {
      row.push_back(tuple.at(c).ToDisplayString());
      widths[c] = std::max(widths[c], row.back().size());
    }
    rows.push_back(std::move(row));
  }

  std::ostringstream out;
  auto rule = [&] {
    out << "+";
    for (size_t c = 0; c < cols; ++c) {
      out << std::string(widths[c] + 2, '-') << "+";
    }
    out << "\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (size_t c = 0; c < cols; ++c) {
      out << " " << cells[c] << std::string(widths[c] - cells[c].size(), ' ')
          << " |";
    }
    out << "\n";
  };
  rule();
  std::vector<std::string> header;
  for (size_t c = 0; c < cols; ++c) header.push_back(schema.attribute(c).name);
  line(header);
  rule();
  for (const auto& row : rows) line(row);
  rule();
  out << rows.size() << " row(s)\n";
  return out.str();
}

}  // namespace sql
}  // namespace dbph
