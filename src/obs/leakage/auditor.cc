#include "obs/leakage/auditor.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "crypto/random.h"
#include "crypto/sha256.h"
#include "games/leakage.h"

namespace dbph {
namespace obs {
namespace leakage {

namespace {

uint64_t RoundToMillis(double value) {
  if (value <= 0.0) return 0;
  return static_cast<uint64_t>(std::llround(value * 1000.0));
}

/// splitmix64 finalizer: decorrelates the (prev, cur) pair key from the
/// raw digests so adjacent-pair tracking never collides systematically.
uint64_t MixDigest(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

LeakageAuditor::LeakageAuditor(const LeakageOptions& options,
                               MetricsRegistry* registry)
    : options_(options), salt_(options.salt) {
  if (salt_.empty()) salt_ = crypto::DefaultRng().NextBytes(16);
  if (registry != nullptr) {
    queries_total_ = registry->GetCounter("dbph_leakage_observed_queries_total");
    alerts_total_ = registry->GetCounter("dbph_leakage_alerts_total");
    evictions_total_ =
        registry->GetCounter("dbph_leakage_sketch_evictions_total");
    relations_gauge_ = registry->GetGauge("dbph_leakage_relations");
    distinct_tags_gauge_ = registry->GetGauge("dbph_leakage_distinct_tags");
    entropy_gauge_ = registry->GetGauge("dbph_leakage_tag_entropy_millibits");
    advantage_gauge_ = registry->GetGauge("dbph_leakage_advantage_millis");
    scan_sizes_hist_ =
        registry->GetHistogram("dbph_leakage_result_size_scan", Unit::kCount);
    index_sizes_hist_ =
        registry->GetHistogram("dbph_leakage_result_size_index", Unit::kCount);
  }
}

uint64_t LeakageAuditor::TagDigest(const Bytes& trapdoor_bytes) const {
  Bytes material = salt_;
  material.insert(material.end(), trapdoor_bytes.begin(),
                  trapdoor_bytes.end());
  Bytes digest = crypto::Sha256::Hash(material);
  uint64_t tag = 0;
  for (size_t i = 0; i < 8; ++i) tag = (tag << 8) | digest[i];
  return tag;
}

size_t LeakageAuditor::RelationSlotLocked(const std::string& relation) {
  auto [it, inserted] = relation_slots_.emplace(relation, states_.size());
  if (inserted) {
    states_.push_back(std::make_unique<RelationState>(options_));
    slot_names_.push_back(relation);
  }
  return it->second;
}

void LeakageAuditor::RecordQuery(const std::string& relation,
                                 const Bytes& trapdoor_bytes,
                                 uint64_t result_size, bool used_index) {
  // The digest is the only work done against the raw trapdoor; the bytes
  // are never retained.
  uint64_t digest = TagDigest(trapdoor_bytes);
  std::lock_guard<std::mutex> lock(mutex_);
  PendingEntry& entry = pending_[pending_count_++];
  entry.relation_slot = static_cast<uint32_t>(RelationSlotLocked(relation));
  entry.digest = digest;
  entry.result_size = result_size;
  entry.used_index = used_index;
  if (pending_count_ == kPendingRingSize) FoldLocked();
}

void LeakageAuditor::FoldLocked() {
  for (size_t i = 0; i < pending_count_; ++i) {
    const PendingEntry& entry = pending_[i];
    RelationState& state = *states_[entry.relation_slot];
    state.queries++;
    state.tags.Record(entry.digest);
    if (state.has_prev) {
      state.pairs.Record(MixDigest(state.prev_digest) ^ entry.digest);
    }
    state.prev_digest = entry.digest;
    state.has_prev = true;
    if (entry.used_index) {
      state.index_sizes.Record(entry.result_size);
      if (index_sizes_hist_ != nullptr) {
        index_sizes_hist_->Record(entry.result_size);
      }
    } else {
      state.scan_sizes.Record(entry.result_size);
      if (scan_sizes_hist_ != nullptr) {
        scan_sizes_hist_->Record(entry.result_size);
      }
    }
    MaybeAlertLocked(&state, slot_names_[entry.relation_slot]);
  }
  folded_queries_ += pending_count_;
  pending_count_ = 0;
}

void LeakageAuditor::MaybeAlertLocked(RelationState* state,
                                      const std::string& relation) {
  if (state->alerted || state->queries < options_.min_alert_queries) return;
  uint64_t distinct = state->tags.size();
  uint64_t total = state->tags.total();
  if (distinct == 0 || total == 0) return;
  double modal =
      static_cast<double>(state->tags.ModalCount()) / static_cast<double>(total);
  double advantage = std::max(0.0, modal - 1.0 / static_cast<double>(distinct));
  if (RoundToMillis(advantage) < options_.alert_advantage_millis) return;
  state->alerted = true;
  ++alerts_;
  // Redacted by construction: relation name, counts, and rates only —
  // all derived from what Eve observes anyway.
  DBPH_LOG(Warning) << "leakage alert: relation " << relation
                    << " frequency-attack advantage "
                    << RoundToMillis(advantage) << "/1000 exceeds budget "
                    << options_.alert_advantage_millis
                    << "/1000 (queries=" << state->queries
                    << ", distinct_tags=" << distinct << ")";
}

LeakageReport LeakageAuditor::Report() {
  std::lock_guard<std::mutex> lock(mutex_);
  FoldLocked();
  LeakageReport report;
  report.queries_observed = folded_queries_;
  report.alerts = alerts_;
  report.advantage_budget_millis = options_.alert_advantage_millis;
  report.relations.reserve(relation_slots_.size());
  for (const auto& [name, slot] : relation_slots_) {
    const RelationState& state = *states_[slot];
    RelationLeakage rel;
    rel.relation = name;
    rel.queries = state.queries;
    rel.distinct_tags = state.tags.size();
    rel.sketch_evictions = state.tags.evictions();
    games::SpectrumSummary spectrum =
        games::SummarizeTagSpectrum(state.tags.Counts());
    rel.entropy_millibits = RoundToMillis(spectrum.entropy_bits);
    rel.modal_rate_millis = RoundToMillis(spectrum.modal_rate);
    rel.advantage_millis = RoundToMillis(spectrum.advantage);
    rel.cooccurrence_pairs = state.pairs.size();
    if (state.pairs.total() != 0) {
      rel.cooccurrence_modal_millis = RoundToMillis(
          static_cast<double>(state.pairs.ModalCount()) /
          static_cast<double>(state.pairs.total()));
    }
    std::vector<SpaceSavingSketch::Entry> entries = state.tags.Entries();
    size_t top = std::min(options_.report_top, entries.size());
    rel.top_tags.reserve(top);
    for (size_t i = 0; i < top; ++i) {
      rel.top_tags.push_back(
          TagCount{entries[i].key, entries[i].count, entries[i].error});
    }
    rel.scan_result_sizes = state.scan_sizes.Snapshot();
    rel.index_result_sizes = state.index_sizes.Snapshot();
    report.relations.push_back(std::move(rel));
  }
  return report;
}

void LeakageAuditor::RefreshMetrics() {
  std::lock_guard<std::mutex> lock(mutex_);
  FoldLocked();
  if (queries_total_ == nullptr) return;
  queries_total_->Store(folded_queries_);
  alerts_total_->Store(alerts_);
  relations_gauge_->Set(static_cast<int64_t>(states_.size()));
  uint64_t evictions = 0;
  uint64_t distinct = 0;
  // The gauges report the WORST relation — the one Eve attacks first:
  // max advantage, and the entropy of that same relation.
  uint64_t worst_advantage = 0;
  uint64_t worst_entropy = 0;
  bool have_worst = false;
  for (const auto& state : states_) {
    evictions += state->tags.evictions();
    distinct += state->tags.size();
    games::SpectrumSummary spectrum =
        games::SummarizeTagSpectrum(state->tags.Counts());
    uint64_t advantage = RoundToMillis(spectrum.advantage);
    if (!have_worst || advantage > worst_advantage) {
      have_worst = true;
      worst_advantage = advantage;
      worst_entropy = RoundToMillis(spectrum.entropy_bits);
    }
  }
  evictions_total_->Store(evictions);
  distinct_tags_gauge_->Set(static_cast<int64_t>(distinct));
  advantage_gauge_->Set(static_cast<int64_t>(worst_advantage));
  entropy_gauge_->Set(static_cast<int64_t>(worst_entropy));
}

uint64_t LeakageAuditor::queries_observed() {
  std::lock_guard<std::mutex> lock(mutex_);
  return folded_queries_ + pending_count_;
}

}  // namespace leakage
}  // namespace obs
}  // namespace dbph
