#ifndef DBPH_OBS_LEAKAGE_AUDITOR_H_
#define DBPH_OBS_LEAKAGE_AUDITOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "obs/leakage/report.h"
#include "obs/leakage/sketch.h"
#include "obs/metrics.h"

namespace dbph {
namespace obs {
namespace leakage {

/// Tuning and policy for the auditor; all defaults are safe to ship.
struct LeakageOptions {
  /// Space-saving sketch capacity per relation: distinct tag digests
  /// tracked exactly before the spectrum degrades to heavy-hitters.
  size_t top_k = 128;
  /// Tag entries included per relation in a LeakageReport.
  size_t report_top = 8;
  /// Capacity of the adjacent-pair co-occurrence sketch per relation.
  size_t cooccurrence_capacity = 1024;
  /// Alert when a relation's frequency-attack advantage (thousandths)
  /// reaches this budget. 500 = Eve predicts the next query tag 50
  /// points better than blind guessing.
  uint64_t alert_advantage_millis = 500;
  /// Suppress alerts until a relation has at least this many observed
  /// queries (tiny samples trivially look skewed).
  uint64_t min_alert_queries = 32;
  /// Digest salt. Empty (production) = fresh random salt per auditor,
  /// so reports cannot be linked back to wire captures across
  /// restarts. Tests inject a fixed salt for deterministic reports.
  Bytes salt;
};

/// \brief Online mirror of the honest-but-curious server's view.
///
/// Consumes exactly what `ObservationLog` records — (relation, trapdoor
/// bytes, matched count, access path) per executed query — and maintains
/// bounded per-relation statistics: a space-saving tag-frequency sketch
/// with empirical entropy, adjacent-tag co-occurrence counts, and
/// result-size histograms per access path. The frequency-attack
/// advantage is computed with the same estimator the offline games
/// harness uses (games::SummarizeTagSpectrum), so the live daemon and
/// the test-bench report the same number for the same workload.
///
/// Redaction contract: trapdoor bytes are digested (salted SHA-256,
/// truncated to 64 bits) at record time and immediately discarded;
/// nothing downstream — sketches, reports, metrics, alert log lines —
/// ever sees raw trapdoor or ciphertext bytes.
///
/// Threading: RecordQuery stages a fixed-size entry into a plain ring
/// and defers all sketch work to a fold, which runs when the ring fills
/// or a reader (Report / RefreshMetrics) needs fresh state — the same
/// fold-on-read design the request metrics use. The auditor carries its
/// own mutex so it is safe standalone; inside the server every call
/// additionally happens under the dispatch lock, so that mutex is
/// uncontended on the hot path.
class LeakageAuditor {
 public:
  /// `registry` may be null (no metrics export, reports still work).
  LeakageAuditor(const LeakageOptions& options, MetricsRegistry* registry);

  /// Hot path: one observed query. Digests the trapdoor and stages the
  /// observation; amortized cost is one SHA-256 plus a ring append.
  void RecordQuery(const std::string& relation, const Bytes& trapdoor_bytes,
                   uint64_t result_size, bool used_index);

  /// Folds pending observations and freezes the adversary's view.
  LeakageReport Report();

  /// Folds pending observations and refreshes the dbph_leakage_* registry
  /// instruments (no-op without a registry).
  void RefreshMetrics();

  /// Total queries observed (folded + staged); test/bench convenience.
  uint64_t queries_observed();

 private:
  struct RelationState {
    explicit RelationState(const LeakageOptions& options)
        : tags(options.top_k), pairs(options.cooccurrence_capacity) {}

    SpaceSavingSketch tags;
    SpaceSavingSketch pairs;
    bool has_prev = false;
    uint64_t prev_digest = 0;
    Histogram scan_sizes{Unit::kCount};
    Histogram index_sizes{Unit::kCount};
    uint64_t queries = 0;
    bool alerted = false;
  };

  struct PendingEntry {
    uint32_t relation_slot = 0;
    uint64_t digest = 0;
    uint64_t result_size = 0;
    bool used_index = false;
  };

  static constexpr size_t kPendingRingSize = 256;

  uint64_t TagDigest(const Bytes& trapdoor_bytes) const;
  size_t RelationSlotLocked(const std::string& relation);
  void FoldLocked();
  void MaybeAlertLocked(RelationState* state, const std::string& relation);

  const LeakageOptions options_;
  Bytes salt_;

  std::mutex mutex_;
  std::map<std::string, size_t> relation_slots_;  // name -> states_ index
  std::vector<std::unique_ptr<RelationState>> states_;
  std::vector<std::string> slot_names_;  // states_ index -> name
  PendingEntry pending_[kPendingRingSize];
  size_t pending_count_ = 0;
  uint64_t folded_queries_ = 0;
  uint64_t alerts_ = 0;

  // Cached registry instruments (null when metrics are off).
  Counter* queries_total_ = nullptr;
  Counter* alerts_total_ = nullptr;
  Counter* evictions_total_ = nullptr;
  Gauge* relations_gauge_ = nullptr;
  Gauge* distinct_tags_gauge_ = nullptr;
  Gauge* entropy_gauge_ = nullptr;
  Gauge* advantage_gauge_ = nullptr;
  Histogram* scan_sizes_hist_ = nullptr;
  Histogram* index_sizes_hist_ = nullptr;
};

}  // namespace leakage
}  // namespace obs
}  // namespace dbph

#endif  // DBPH_OBS_LEAKAGE_AUDITOR_H_
