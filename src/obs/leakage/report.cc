#include "obs/leakage/report.h"

#include <iomanip>
#include <sstream>

#include "common/macros.h"

namespace dbph {
namespace obs {
namespace leakage {

void LeakageReport::AppendTo(Bytes* out) const {
  AppendUint64(out, queries_observed);
  AppendUint64(out, alerts);
  AppendUint64(out, advantage_budget_millis);
  AppendUint32(out, static_cast<uint32_t>(relations.size()));
  for (const RelationLeakage& rel : relations) {
    AppendLengthPrefixed(out, ToBytes(rel.relation));
    AppendUint64(out, rel.queries);
    AppendUint64(out, rel.distinct_tags);
    AppendUint64(out, rel.sketch_evictions);
    AppendUint64(out, rel.entropy_millibits);
    AppendUint64(out, rel.modal_rate_millis);
    AppendUint64(out, rel.advantage_millis);
    AppendUint64(out, rel.cooccurrence_pairs);
    AppendUint64(out, rel.cooccurrence_modal_millis);
    AppendUint32(out, static_cast<uint32_t>(rel.top_tags.size()));
    for (const TagCount& tag : rel.top_tags) {
      AppendUint64(out, tag.digest);
      AppendUint64(out, tag.count);
      AppendUint64(out, tag.error);
    }
    AppendHistogramSnapshot(out, rel.scan_result_sizes);
    AppendHistogramSnapshot(out, rel.index_result_sizes);
  }
}

Result<LeakageReport> LeakageReport::ReadFrom(ByteReader* reader) {
  LeakageReport report;
  DBPH_ASSIGN_OR_RETURN(report.queries_observed, reader->ReadUint64());
  DBPH_ASSIGN_OR_RETURN(report.alerts, reader->ReadUint64());
  DBPH_ASSIGN_OR_RETURN(report.advantage_budget_millis, reader->ReadUint64());
  // Counts below are attacker-controlled wire input: each relation needs
  // well over one byte and each tag entry 24 bytes, so cap both against
  // the bytes physically left before any allocation.
  DBPH_ASSIGN_OR_RETURN(uint32_t num_relations, reader->ReadUint32());
  if (num_relations > reader->remaining()) {
    return Status::DataLoss("leakage relation count exceeds payload");
  }
  report.relations.reserve(num_relations);
  for (uint32_t i = 0; i < num_relations; ++i) {
    RelationLeakage rel;
    DBPH_ASSIGN_OR_RETURN(Bytes name, reader->ReadLengthPrefixed());
    rel.relation = ToString(name);
    DBPH_ASSIGN_OR_RETURN(rel.queries, reader->ReadUint64());
    DBPH_ASSIGN_OR_RETURN(rel.distinct_tags, reader->ReadUint64());
    DBPH_ASSIGN_OR_RETURN(rel.sketch_evictions, reader->ReadUint64());
    DBPH_ASSIGN_OR_RETURN(rel.entropy_millibits, reader->ReadUint64());
    DBPH_ASSIGN_OR_RETURN(rel.modal_rate_millis, reader->ReadUint64());
    DBPH_ASSIGN_OR_RETURN(rel.advantage_millis, reader->ReadUint64());
    DBPH_ASSIGN_OR_RETURN(rel.cooccurrence_pairs, reader->ReadUint64());
    DBPH_ASSIGN_OR_RETURN(rel.cooccurrence_modal_millis, reader->ReadUint64());
    DBPH_ASSIGN_OR_RETURN(uint32_t num_tags, reader->ReadUint32());
    if (num_tags > reader->remaining() / 24) {
      return Status::DataLoss("leakage tag count exceeds payload");
    }
    rel.top_tags.reserve(num_tags);
    for (uint32_t t = 0; t < num_tags; ++t) {
      TagCount tag;
      DBPH_ASSIGN_OR_RETURN(tag.digest, reader->ReadUint64());
      DBPH_ASSIGN_OR_RETURN(tag.count, reader->ReadUint64());
      DBPH_ASSIGN_OR_RETURN(tag.error, reader->ReadUint64());
      rel.top_tags.push_back(tag);
    }
    DBPH_ASSIGN_OR_RETURN(rel.scan_result_sizes,
                          ReadHistogramSnapshot(reader));
    DBPH_ASSIGN_OR_RETURN(rel.index_result_sizes,
                          ReadHistogramSnapshot(reader));
    report.relations.push_back(std::move(rel));
  }
  return report;
}

namespace {

std::string Millis(uint64_t value_millis) {
  std::ostringstream out;
  out << value_millis / 1000 << "." << std::setw(3) << std::setfill('0')
      << value_millis % 1000;
  return out.str();
}

std::string DigestHex(uint64_t digest) {
  std::ostringstream out;
  out << std::hex << std::setw(16) << std::setfill('0') << digest;
  return out.str();
}

void RenderSizes(std::ostringstream* out, const char* path,
                 const HistogramSnapshot& sizes) {
  *out << path << " n=" << sizes.count;
  if (sizes.count != 0) {
    *out << " p50=" << sizes.P50() << " p95=" << sizes.P95()
         << " max=" << sizes.max;
  }
}

}  // namespace

std::string LeakageReport::RenderText() const {
  std::ostringstream out;
  out << "leakage report (salted tag digests; advantage budget "
      << Millis(advantage_budget_millis) << "):\n";
  out << "  queries observed = " << queries_observed
      << ", budget alerts = " << alerts << "\n";
  if (relations.empty()) {
    out << "  (no queries observed yet)\n";
    return out.str();
  }
  for (const RelationLeakage& rel : relations) {
    out << "  relation " << rel.relation << ": queries=" << rel.queries
        << " distinct_tags=" << rel.distinct_tags
        << (rel.sketch_evictions != 0 ? "+" : "")
        << " entropy_bits=" << Millis(rel.entropy_millibits)
        << " modal=" << Millis(rel.modal_rate_millis)
        << " advantage=" << Millis(rel.advantage_millis)
        << " evictions=" << rel.sketch_evictions << "\n";
    if (!rel.top_tags.empty()) {
      out << "    top tags:";
      for (const TagCount& tag : rel.top_tags) {
        out << " " << DigestHex(tag.digest) << " x" << tag.count;
        if (tag.error != 0) out << "(-" << tag.error << ")";
      }
      out << "\n";
    }
    out << "    result sizes: ";
    RenderSizes(&out, "scan", rel.scan_result_sizes);
    out << ", ";
    RenderSizes(&out, "index", rel.index_result_sizes);
    out << "\n";
    out << "    co-occurrence: pairs=" << rel.cooccurrence_pairs
        << " modal=" << Millis(rel.cooccurrence_modal_millis) << "\n";
  }
  return out.str();
}

}  // namespace leakage
}  // namespace obs
}  // namespace dbph
