#ifndef DBPH_OBS_LEAKAGE_SKETCH_H_
#define DBPH_OBS_LEAKAGE_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

namespace dbph {
namespace obs {
namespace leakage {

/// \brief Bounded heavy-hitter frequency sketch (space-saving, Metwally
/// et al.) over 64-bit tag digests.
///
/// Tracks at most `capacity` distinct keys. While the stream holds fewer
/// distinct keys than the capacity every count is exact; once the sketch
/// saturates, recording an untracked key evicts the current minimum and
/// the newcomer inherits its count (the classic space-saving
/// overestimate, bounded by the evicted minimum and reported per entry
/// as `error`). This is exactly the adversary's budget-limited view: Eve
/// with O(k) memory still nails the head of the query distribution,
/// which is all a frequency attack needs.
///
/// Deterministic: the same key stream always produces the same state
/// (ties broken by key value). Not thread-safe; the LeakageAuditor
/// serializes access.
class SpaceSavingSketch {
 public:
  struct Entry {
    uint64_t key = 0;
    uint64_t count = 0;  ///< estimated frequency (overestimate)
    uint64_t error = 0;  ///< count - error is a guaranteed lower bound
  };

  explicit SpaceSavingSketch(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void Record(uint64_t key);

  /// Sum of all recorded observations (exact regardless of evictions).
  uint64_t total() const { return total_; }
  /// Distinct keys currently tracked — exact distinct count while
  /// `evictions() == 0`, otherwise a lower bound (== capacity).
  size_t size() const { return counts_.size(); }
  size_t capacity() const { return capacity_; }
  /// Number of tracked keys displaced since construction; non-zero means
  /// counts are approximate and `size()` undercounts true distinct keys.
  uint64_t evictions() const { return evictions_; }
  bool saturated() const { return evictions_ != 0; }

  /// Estimated count of the most frequent key (0 when empty).
  uint64_t ModalCount() const;

  /// All tracked entries, most frequent first (ties by ascending key, so
  /// the ordering — and every report built from it — is deterministic).
  std::vector<Entry> Entries() const;

  /// Just the estimated counts, for games::SummarizeTagSpectrum.
  std::vector<uint64_t> Counts() const;

 private:
  struct Tracked {
    uint64_t count = 0;
    uint64_t error = 0;
  };

  size_t capacity_;
  uint64_t total_ = 0;
  uint64_t evictions_ = 0;
  std::map<uint64_t, Tracked> counts_;           // key -> estimate
  std::set<std::pair<uint64_t, uint64_t>> order_;  // (count, key), min first
};

}  // namespace leakage
}  // namespace obs
}  // namespace dbph

#endif  // DBPH_OBS_LEAKAGE_SKETCH_H_
