#ifndef DBPH_OBS_LEAKAGE_REPORT_H_
#define DBPH_OBS_LEAKAGE_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "obs/metrics.h"

namespace dbph {
namespace obs {
namespace leakage {

/// \brief One frozen adversary's-view summary, produced by the
/// LeakageAuditor: the kLeakageReportResult payload, the LEAKAGE REPL
/// table, and the test assertions are all renderings of this.
///
/// Redaction contract: tag digests below are salted SHA-256 truncations
/// of trapdoor bytes (salt random per server process), so a report can
/// be shipped to dashboards without letting its reader link tags back
/// to wire captures — and raw trapdoor or ciphertext bytes must never
/// appear here.

/// One tracked tag digest with its space-saving estimate.
struct TagCount {
  uint64_t digest = 0;  ///< truncated SHA-256(salt || trapdoor bytes)
  uint64_t count = 0;   ///< estimated observations (overestimate)
  uint64_t error = 0;   ///< count - error is a guaranteed lower bound

  friend bool operator==(const TagCount& a, const TagCount& b) {
    return a.digest == b.digest && a.count == b.count && a.error == b.error;
  }
};

/// Eve's accumulated view of one relation's query stream.
struct RelationLeakage {
  std::string relation;
  uint64_t queries = 0;           ///< observed queries (selects + deletes)
  uint64_t distinct_tags = 0;     ///< tracked distinct tag digests
  uint64_t sketch_evictions = 0;  ///< >0 => spectrum approximate, distinct_tags a lower bound
  /// games::SummarizeTagSpectrum over the live sketch, scaled to
  /// integers for a deterministic wire form: entropy in millibits,
  /// rates in thousandths.
  uint64_t entropy_millibits = 0;
  uint64_t modal_rate_millis = 0;
  uint64_t advantage_millis = 0;
  /// Adjacent query-tag pair statistics (co-occurrence sketch):
  /// sequential correlation Eve can exploit beyond marginal frequencies.
  uint64_t cooccurrence_pairs = 0;
  uint64_t cooccurrence_modal_millis = 0;
  /// Head of the frequency spectrum, most frequent first.
  std::vector<TagCount> top_tags;
  /// Result-size distributions per access path — what Eve learns from
  /// watching how much ciphertext each path returns.
  HistogramSnapshot scan_result_sizes;
  HistogramSnapshot index_result_sizes;

  friend bool operator==(const RelationLeakage& a, const RelationLeakage& b) {
    return a.relation == b.relation && a.queries == b.queries &&
           a.distinct_tags == b.distinct_tags &&
           a.sketch_evictions == b.sketch_evictions &&
           a.entropy_millibits == b.entropy_millibits &&
           a.modal_rate_millis == b.modal_rate_millis &&
           a.advantage_millis == b.advantage_millis &&
           a.cooccurrence_pairs == b.cooccurrence_pairs &&
           a.cooccurrence_modal_millis == b.cooccurrence_modal_millis &&
           a.top_tags == b.top_tags &&
           a.scan_result_sizes == b.scan_result_sizes &&
           a.index_result_sizes == b.index_result_sizes;
  }
};

/// The full report (kLeakageReportResult payload).
struct LeakageReport {
  uint64_t queries_observed = 0;  ///< across all relations
  uint64_t alerts = 0;            ///< relations that crossed the budget
  uint64_t advantage_budget_millis = 0;  ///< configured alert threshold
  std::vector<RelationLeakage> relations;  ///< sorted by relation name

  /// Wire form. ReadFrom validates every count against the bytes
  /// physically present before allocating — hostile payloads fail
  /// closed.
  void AppendTo(Bytes* out) const;
  static Result<LeakageReport> ReadFrom(ByteReader* reader);

  /// Human-oriented rendering for the LEAKAGE REPL command.
  std::string RenderText() const;

  friend bool operator==(const LeakageReport& a, const LeakageReport& b) {
    return a.queries_observed == b.queries_observed && a.alerts == b.alerts &&
           a.advantage_budget_millis == b.advantage_budget_millis &&
           a.relations == b.relations;
  }
};

}  // namespace leakage
}  // namespace obs
}  // namespace dbph

#endif  // DBPH_OBS_LEAKAGE_REPORT_H_
