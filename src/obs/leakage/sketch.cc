#include "obs/leakage/sketch.h"

#include <algorithm>

namespace dbph {
namespace obs {
namespace leakage {

void SpaceSavingSketch::Record(uint64_t key) {
  ++total_;
  auto it = counts_.find(key);
  if (it != counts_.end()) {
    order_.erase({it->second.count, key});
    ++it->second.count;
    order_.insert({it->second.count, key});
    return;
  }
  if (counts_.size() < capacity_) {
    counts_.emplace(key, Tracked{1, 0});
    order_.insert({1, key});
    return;
  }
  // Saturated: displace the current minimum; the newcomer inherits its
  // count (space-saving invariant: true count <= count, and
  // count - error <= true count).
  auto min_it = order_.begin();
  uint64_t min_count = min_it->first;
  counts_.erase(min_it->second);
  order_.erase(min_it);
  ++evictions_;
  counts_.emplace(key, Tracked{min_count + 1, min_count});
  order_.insert({min_count + 1, key});
}

uint64_t SpaceSavingSketch::ModalCount() const {
  if (order_.empty()) return 0;
  return order_.rbegin()->first;
}

std::vector<SpaceSavingSketch::Entry> SpaceSavingSketch::Entries() const {
  std::vector<Entry> entries;
  entries.reserve(counts_.size());
  // order_ iterates (count asc, key asc); reverse for count desc while
  // keeping the ordering fully deterministic. Within one count the key
  // order flips to descending, so normalize ties below.
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    const Tracked& tracked = counts_.at(it->second);
    entries.push_back(Entry{it->second, tracked.count, tracked.error});
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     if (a.count != b.count) return a.count > b.count;
                     return a.key < b.key;
                   });
  return entries;
}

std::vector<uint64_t> SpaceSavingSketch::Counts() const {
  std::vector<uint64_t> counts;
  counts.reserve(counts_.size());
  for (const auto& [key, tracked] : counts_) counts.push_back(tracked.count);
  return counts;
}

}  // namespace leakage
}  // namespace obs
}  // namespace dbph
