#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "common/macros.h"

namespace dbph {
namespace obs {

// ------------------------------------------------------------- histogram

size_t Histogram::BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  const size_t bits = static_cast<size_t>(std::bit_width(value));
  return std::min(bits, kNumBuckets - 1);
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  if (index == 0) return 0;
  if (index >= 63) return UINT64_MAX;
  return (uint64_t{1} << index) - 1;
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

static_assert(std::tuple_size<decltype(HistogramDelta::buckets)>::value ==
                  Histogram::kNumBuckets,
              "HistogramDelta bucket layout must match Histogram");

void HistogramDelta::Add(uint64_t value) {
  ++buckets[Histogram::BucketIndex(value)];
  ++count;
  sum += value;
  if (value > max) max = value;
}

void Histogram::Merge(const HistogramDelta& delta) {
  if (delta.count == 0) return;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (delta.buckets[i] != 0) {
      buckets_[i].fetch_add(delta.buckets[i], std::memory_order_relaxed);
    }
  }
  count_.fetch_add(delta.count, std::memory_order_relaxed);
  sum_.fetch_add(delta.sum, std::memory_order_relaxed);
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (delta.max > seen && !max_.compare_exchange_weak(
                                 seen, delta.max, std::memory_order_relaxed)) {
  }
}

void Histogram::CopyFrom(const Histogram& other) {
  count_.store(other.count_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  sum_.store(other.sum_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
  max_.store(other.max_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    buckets_[i].store(other.buckets_[i].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.unit = unit_;
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  snapshot.max = max_.load(std::memory_order_relaxed);
  snapshot.buckets.resize(kNumBuckets);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snapshot.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snapshot;
}

uint64_t HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      return std::min(Histogram::BucketUpperBound(i), max);
    }
  }
  return max;
}

// ------------------------------------------------------------- registry

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name, Unit unit) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(unit);
  return slot.get();
}

void MetricsRegistry::SetInfo(const std::string& name,
                              const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  infos_[name] = labels;
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms[name] = histogram->Snapshot();
  }
  snapshot.infos = infos_;
  return snapshot;
}

// ---------------------------------------------------------- serialization

void AppendHistogramSnapshot(Bytes* out, const HistogramSnapshot& histogram) {
  out->push_back(static_cast<uint8_t>(histogram.unit));
  AppendUint64(out, histogram.count);
  AppendUint64(out, histogram.sum);
  AppendUint64(out, histogram.max);
  AppendUint32(out, static_cast<uint32_t>(histogram.buckets.size()));
  for (uint64_t bucket : histogram.buckets) AppendUint64(out, bucket);
}

Result<HistogramSnapshot> ReadHistogramSnapshot(ByteReader* reader) {
  HistogramSnapshot histogram;
  DBPH_ASSIGN_OR_RETURN(Bytes unit_byte, reader->ReadRaw(1));
  if (unit_byte[0] > static_cast<uint8_t>(Unit::kCount)) {
    return Status::DataLoss("unknown histogram unit");
  }
  histogram.unit = static_cast<Unit>(unit_byte[0]);
  DBPH_ASSIGN_OR_RETURN(histogram.count, reader->ReadUint64());
  DBPH_ASSIGN_OR_RETURN(histogram.sum, reader->ReadUint64());
  DBPH_ASSIGN_OR_RETURN(histogram.max, reader->ReadUint64());
  DBPH_ASSIGN_OR_RETURN(uint32_t num_buckets, reader->ReadUint32());
  if (num_buckets > reader->remaining() / 8 ||
      num_buckets > Histogram::kNumBuckets) {
    return Status::DataLoss("snapshot bucket count exceeds payload");
  }
  histogram.buckets.reserve(num_buckets);
  for (uint32_t b = 0; b < num_buckets; ++b) {
    DBPH_ASSIGN_OR_RETURN(uint64_t bucket, reader->ReadUint64());
    histogram.buckets.push_back(bucket);
  }
  return histogram;
}

void RegistrySnapshot::AppendTo(Bytes* out) const {
  AppendUint32(out, static_cast<uint32_t>(counters.size()));
  for (const auto& [name, value] : counters) {
    AppendLengthPrefixed(out, ToBytes(name));
    AppendUint64(out, value);
  }
  AppendUint32(out, static_cast<uint32_t>(gauges.size()));
  for (const auto& [name, value] : gauges) {
    AppendLengthPrefixed(out, ToBytes(name));
    AppendUint64(out, static_cast<uint64_t>(value));
  }
  AppendUint32(out, static_cast<uint32_t>(histograms.size()));
  for (const auto& [name, histogram] : histograms) {
    AppendLengthPrefixed(out, ToBytes(name));
    AppendHistogramSnapshot(out, histogram);
  }
  AppendUint32(out, static_cast<uint32_t>(infos.size()));
  for (const auto& [name, labels] : infos) {
    AppendLengthPrefixed(out, ToBytes(name));
    AppendLengthPrefixed(out, ToBytes(labels));
  }
}

Result<RegistrySnapshot> RegistrySnapshot::ReadFrom(ByteReader* reader) {
  RegistrySnapshot snapshot;
  // Every count below is attacker-controlled input from the wire;
  // validate against the bytes physically present before reserving or
  // looping (each entry needs strictly more than one byte).
  DBPH_ASSIGN_OR_RETURN(uint32_t num_counters, reader->ReadUint32());
  if (num_counters > reader->remaining()) {
    return Status::DataLoss("snapshot counter count exceeds payload");
  }
  for (uint32_t i = 0; i < num_counters; ++i) {
    DBPH_ASSIGN_OR_RETURN(Bytes name, reader->ReadLengthPrefixed());
    DBPH_ASSIGN_OR_RETURN(uint64_t value, reader->ReadUint64());
    snapshot.counters[ToString(name)] = value;
  }
  DBPH_ASSIGN_OR_RETURN(uint32_t num_gauges, reader->ReadUint32());
  if (num_gauges > reader->remaining()) {
    return Status::DataLoss("snapshot gauge count exceeds payload");
  }
  for (uint32_t i = 0; i < num_gauges; ++i) {
    DBPH_ASSIGN_OR_RETURN(Bytes name, reader->ReadLengthPrefixed());
    DBPH_ASSIGN_OR_RETURN(uint64_t value, reader->ReadUint64());
    snapshot.gauges[ToString(name)] = static_cast<int64_t>(value);
  }
  DBPH_ASSIGN_OR_RETURN(uint32_t num_histograms, reader->ReadUint32());
  if (num_histograms > reader->remaining()) {
    return Status::DataLoss("snapshot histogram count exceeds payload");
  }
  for (uint32_t i = 0; i < num_histograms; ++i) {
    DBPH_ASSIGN_OR_RETURN(Bytes name, reader->ReadLengthPrefixed());
    DBPH_ASSIGN_OR_RETURN(HistogramSnapshot histogram,
                          ReadHistogramSnapshot(reader));
    snapshot.histograms[ToString(name)] = std::move(histogram);
  }
  // Info section: absent in pre-0.7 snapshots, so tolerate a clean end
  // of payload here (but not a truncated section).
  if (reader->remaining() > 0) {
    DBPH_ASSIGN_OR_RETURN(uint32_t num_infos, reader->ReadUint32());
    if (num_infos > reader->remaining()) {
      return Status::DataLoss("snapshot info count exceeds payload");
    }
    for (uint32_t i = 0; i < num_infos; ++i) {
      DBPH_ASSIGN_OR_RETURN(Bytes name, reader->ReadLengthPrefixed());
      DBPH_ASSIGN_OR_RETURN(Bytes labels, reader->ReadLengthPrefixed());
      snapshot.infos[ToString(name)] = ToString(labels);
    }
  }
  return snapshot;
}

// -------------------------------------------------------------- rendering

namespace {

/// Fixed formatting (no scientific notation, no locale) so the output is
/// stable for scrapers and the CI drift check.
std::string FormatDouble(double v) {
  std::ostringstream out;
  out.precision(9);
  out << std::fixed << v;
  std::string s = out.str();
  // Trim trailing zeros but keep at least one decimal digit.
  size_t last = s.find_last_not_of('0');
  if (s[last] == '.') ++last;
  s.erase(last + 1);
  return s;
}

double ScaleForPrometheus(Unit unit, uint64_t value) {
  if (unit == Unit::kMicros) return static_cast<double>(value) / 1e6;
  return static_cast<double>(value);
}

}  // namespace

std::string RegistrySnapshot::RenderPrometheus() const {
  std::ostringstream out;
  for (const auto& [name, labels] : infos) {
    out << "# TYPE " << name << " gauge\n";
    out << name << "{" << labels << "} 1\n";
  }
  for (const auto& [name, value] : counters) {
    out << "# TYPE " << name << " counter\n";
    out << name << " " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    out << "# TYPE " << name << " gauge\n";
    out << name << " " << value << "\n";
  }
  for (const auto& [name, histogram] : histograms) {
    out << "# TYPE " << name << " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < histogram.buckets.size(); ++i) {
      cumulative += histogram.buckets[i];
      out << name << "_bucket{le=\""
          << FormatDouble(ScaleForPrometheus(
                 histogram.unit, Histogram::BucketUpperBound(i)))
          << "\"} " << cumulative << "\n";
      // The empty tail collapses into +Inf: stop after the bucket that
      // covers the observed max, keeping the page small.
      if (cumulative == histogram.count &&
          Histogram::BucketUpperBound(i) >= histogram.max) {
        break;
      }
    }
    out << name << "_bucket{le=\"+Inf\"} " << histogram.count << "\n";
    out << name << "_sum "
        << FormatDouble(ScaleForPrometheus(histogram.unit, histogram.sum))
        << "\n";
    out << name << "_count " << histogram.count << "\n";
  }
  return out.str();
}

std::string RegistrySnapshot::RenderText() const {
  std::ostringstream out;
  if (!infos.empty()) {
    out << "info:\n";
    for (const auto& [name, labels] : infos) {
      out << "  " << name << "{" << labels << "}\n";
    }
  }
  if (!counters.empty()) {
    out << "counters:\n";
    for (const auto& [name, value] : counters) {
      out << "  " << name << " = " << value << "\n";
    }
  }
  if (!gauges.empty()) {
    out << "gauges:\n";
    for (const auto& [name, value] : gauges) {
      out << "  " << name << " = " << value << "\n";
    }
  }
  if (!histograms.empty()) {
    // Values render in each series' canonical unit, decided by the unit
    // carried on the wire — micros-recorded series (the *_seconds names)
    // convert to seconds here exactly like the Prometheus rendering, so
    // a number never means two different things on two surfaces.
    out << "histograms (count / mean / p50 / p95 / p99 / max";
    out << "; *_seconds in seconds):\n";
    for (const auto& [name, h] : histograms) {
      if (h.unit == Unit::kMicros) {
        out << "  " << name << " = " << h.count << " / "
            << FormatDouble(h.Mean() / 1e6) << " / "
            << FormatDouble(ScaleForPrometheus(h.unit, h.P50())) << " / "
            << FormatDouble(ScaleForPrometheus(h.unit, h.P95())) << " / "
            << FormatDouble(ScaleForPrometheus(h.unit, h.P99())) << " / "
            << FormatDouble(ScaleForPrometheus(h.unit, h.max)) << "\n";
      } else {
        out << "  " << name << " = " << h.count << " / "
            << FormatDouble(h.Mean()) << " / " << h.P50() << " / " << h.P95()
            << " / " << h.P99() << " / " << h.max << "\n";
      }
    }
  }
  return out.str();
}

}  // namespace obs
}  // namespace dbph
