#ifndef DBPH_OBS_QUERY_TRACE_H_
#define DBPH_OBS_QUERY_TRACE_H_

#include <cstdint>
#include <sstream>
#include <string>

#include "common/stopwatch.h"

namespace dbph {
namespace obs {

/// \brief Per-request span breakdown: where one request's wall time went,
/// stage by stage. Mutations fill the server's single live trace (valid
/// because mutation dispatch is single-writer); snapshot reads fill a
/// stack-local trace of their own, since any number of them run
/// concurrently. Either way the trace folds into the registry histograms
/// when the request completes; the slow-query log renders it when the
/// total crosses --slow-query-ms.
///
/// Redaction contract: a rendered trace carries the operation, relation
/// name, stage timings, and result size — all metadata Eve observes
/// anyway. It must NEVER carry trapdoor or ciphertext bytes; the
/// slow-query log is expected to end up in log aggregators with weaker
/// access control than the store itself (see docs/OPERATIONS.md).
struct QueryTrace {
  const char* op = "";       ///< wire op name ("select", "batch", ...)
  std::string relation;      ///< relation name ("" when not applicable)
  uint64_t parse_micros = 0;       ///< envelope + payload parse
  uint64_t lock_wait_micros = 0;   ///< dispatch-lock wait (mutations) or
                                   ///< observation-log-mutex wait (reads)
  uint64_t plan_micros = 0;        ///< planner decisions (selects)
  uint64_t execute_micros = 0;     ///< scan/index execution (selects)
  uint64_t execute_scan_micros = 0;   ///< execute share spent full-scanning
  uint64_t execute_index_micros = 0;  ///< execute share spent in index lookups
  uint64_t proof_micros = 0;       ///< Merkle proof build (integrity on)
  uint64_t serialize_micros = 0;   ///< response envelope serialization
  uint64_t total_micros = 0;       ///< parse through serialize, inclusive
  bool used_index = false;         ///< any select leg took the index path
  uint64_t result_size = 0;        ///< documents returned (selects)
  uint64_t match_evals = 0;        ///< PRF evaluations the scan kernel ran

  void Reset() { *this = QueryTrace{}; }

  /// One-line rendering for the slow-query log (redaction contract
  /// above applies: metadata and timings only).
  std::string Describe() const {
    std::ostringstream out;
    out << "op=" << op;
    if (!relation.empty()) out << " relation=" << relation;
    out << " total_us=" << total_micros << " parse_us=" << parse_micros
        << " lock_wait_us=" << lock_wait_micros << " plan_us=" << plan_micros
        << " execute_us=" << execute_micros;
    // The per-path split only exists for planned selects; keep the line
    // short for every other op.
    if (execute_scan_micros != 0 || execute_index_micros != 0) {
      out << " execute_scan_us=" << execute_scan_micros
          << " execute_index_us=" << execute_index_micros;
    }
    out << " proof_us=" << proof_micros
        << " serialize_us=" << serialize_micros
        << " path=" << (used_index ? "index" : "scan")
        << " results=" << result_size;
    // Only kernel scans count evaluations; omit the field elsewhere so
    // index-path and mutation lines stay short.
    if (match_evals != 0) out << " match_evals=" << match_evals;
    return out.str();
  }
};

/// RAII stage timer: adds the elapsed microseconds to `*slot` when it
/// goes out of scope (or at Stop). Construct with a null slot to make it
/// a no-op — the disabled-metrics path costs one branch, no clock reads.
class ScopedStageTimer {
 public:
  explicit ScopedStageTimer(uint64_t* slot) : slot_(slot) {
    if (slot_ != nullptr) watch_.Reset();
  }
  ~ScopedStageTimer() { Stop(); }

  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

  void Stop() {
    if (slot_ != nullptr) {
      *slot_ += static_cast<uint64_t>(watch_.ElapsedMicros());
      slot_ = nullptr;
    }
  }

 private:
  uint64_t* slot_;
  Stopwatch watch_;
};

}  // namespace obs
}  // namespace dbph

#endif  // DBPH_OBS_QUERY_TRACE_H_
