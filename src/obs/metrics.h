#ifndef DBPH_OBS_METRICS_H_
#define DBPH_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace dbph {
namespace obs {

/// \brief Lock-cheap metrics for the daemon: atomic counters and gauges
/// plus log2-bucketed histograms, collected into named registries and
/// surfaced as wire snapshots (kStats), Prometheus text (--metrics-port),
/// and the STATS REPL command.
///
/// Threading model: instrument registration takes the registry mutex once
/// (components cache the returned pointers at startup); every hot-path
/// update afterwards is a relaxed atomic op with no lock. Snapshots read
/// the same atomics relaxed, so a snapshot taken concurrently with
/// updates is a consistent-enough point-in-time view (each value is
/// individually coherent; cross-metric skew is bounded by the scrape).
///
/// Leakage note: everything recorded here is a function of what Eve (the
/// server) already observes — sizes, counts, timings of ciphertext
/// operations. Metric NAMES are fixed at compile time and metric VALUES
/// must never depend on plaintext or key material; see docs/SECURITY.md.

/// What a histogram's recorded values measure; determines Prometheus
/// rendering (microseconds export as seconds, counts export raw).
enum class Unit : uint8_t { kMicros = 0, kCount = 1 };

/// Monotonic event counter. `Add` is the hot-path op; `Store` overwrites
/// (for mirroring a component's own cumulative counter into the registry
/// at snapshot time).
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Store(uint64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time level (open connections, WAL bytes, memoized trapdoors).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// One histogram frozen at a point in time; carries enough to recover
/// count/sum/max and bucket-resolution quantiles.
struct HistogramSnapshot {
  Unit unit = Unit::kCount;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  /// buckets[i] counts values v with BucketIndex(v) == i, i.e. bucket 0
  /// holds {0} and bucket i (i >= 1) holds [2^(i-1), 2^i).
  std::vector<uint64_t> buckets;

  /// Upper-bound estimate of the q-quantile (0 < q <= 1): the upper edge
  /// of the bucket containing rank ceil(q * count), clamped to the exact
  /// max. 0 when empty.
  uint64_t Quantile(double q) const;
  uint64_t P50() const { return Quantile(0.50); }
  uint64_t P95() const { return Quantile(0.95); }
  uint64_t P99() const { return Quantile(0.99); }
  double Mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / count; }

  friend bool operator==(const HistogramSnapshot& a,
                         const HistogramSnapshot& b) {
    return a.unit == b.unit && a.count == b.count && a.sum == b.sum &&
           a.max == b.max && a.buckets == b.buckets;
  }
  friend bool operator!=(const HistogramSnapshot& a,
                         const HistogramSnapshot& b) {
    return !(a == b);
  }
};

class Histogram;

/// Wire helpers shared by RegistrySnapshot and the leakage report:
/// unit byte, count/sum/max, then length-checked buckets. ReadFrom
/// validates the bucket count against the physical payload before
/// allocating.
void AppendHistogramSnapshot(Bytes* out, const HistogramSnapshot& histogram);
Result<HistogramSnapshot> ReadHistogramSnapshot(ByteReader* reader);

/// \brief Plain, non-atomic accumulator for batch recording: a writer
/// that already serializes its own recording (the dispatch path stages
/// request stats under its lock) collects many values here — pure
/// register/L1 arithmetic — then folds them into the shared atomic
/// Histogram with one Merge: one atomic add per *touched* bucket
/// instead of three atomic RMWs per value.
struct HistogramDelta {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::array<uint64_t, 40> buckets{};

  void Add(uint64_t value);
};

/// \brief Log2-bucketed histogram over uint64 values (latencies in
/// microseconds, result sizes, batch sizes). Recording is wait-free:
/// three relaxed atomic adds plus a CAS-max. Bucket edges are powers of
/// two, so 40 buckets cover [0, 2^39) — about six days in microseconds —
/// with values beyond the range clamped into the last bucket.
///
/// Copyable (relaxed element-wise load/store) so value types like
/// ObservationLog::Aggregate can embed one; a copy taken concurrently
/// with writers is a valid snapshot-quality view, like Snapshot().
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 40;

  explicit Histogram(Unit unit = Unit::kCount) : unit_(unit) {}

  Histogram(const Histogram& other) : unit_(other.unit_) { CopyFrom(other); }
  Histogram& operator=(const Histogram& other) {
    if (this != &other) {
      unit_ = other.unit_;
      CopyFrom(other);
    }
    return *this;
  }

  /// Bucket 0 holds {0}; bucket i >= 1 holds [2^(i-1), 2^i).
  static size_t BucketIndex(uint64_t value);
  /// Inclusive upper edge of bucket i: 0, then 2^i - 1.
  static uint64_t BucketUpperBound(size_t index);

  void Record(uint64_t value);

  /// Folds a batch accumulated in a HistogramDelta: equivalent to
  /// Record(v) for every value the delta absorbed, but pays one relaxed
  /// add per non-empty bucket (plus count/sum/CAS-max) regardless of
  /// how many values it held. Safe concurrently with Record and
  /// Snapshot, like any other recording.
  void Merge(const HistogramDelta& delta);

  HistogramSnapshot Snapshot() const;
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  Unit unit() const { return unit_; }

 private:
  void CopyFrom(const Histogram& other);

  Unit unit_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

/// \brief Everything a registry held at one instant, detached from the
/// atomics: the kStatsResult payload, the Prometheus page, and the STATS
/// REPL table are all renderings of this.
struct RegistrySnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  /// Info-style series (build metadata): name -> rendered Prometheus
  /// label body, exported as `name{labels} 1`. Values are fixed at
  /// process start — never derived from runtime data.
  std::map<std::string, std::string> infos;

  /// Wire form (kStatsResult payload). Counts ride length-prefixed and
  /// are validated against the physical payload before any allocation.
  void AppendTo(Bytes* out) const;
  static Result<RegistrySnapshot> ReadFrom(ByteReader* reader);

  /// Prometheus text exposition (version 0.0.4): counters, gauges, and
  /// cumulative `_bucket{le=...}` / `_sum` / `_count` histogram series.
  /// Micros-unit histograms are exported in seconds (names already end
  /// in `_seconds` by convention).
  std::string RenderPrometheus() const;

  /// Human-oriented table for the STATS REPL command.
  std::string RenderText() const;
};

/// \brief Named instrument registry. Get* registers on first use and
/// returns a pointer stable for the registry's lifetime; callers cache it
/// and update lock-free. A name maps to one kind only — re-requesting an
/// existing name with a different kind (or a histogram with a different
/// unit) returns the existing instrument unchanged.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name, Unit unit);

  /// Registers (or overwrites) an info-style series: a constant `1`
  /// gauge whose payload is its label body, e.g.
  /// SetInfo("dbph_build_info", "version=\"0.7\",revision=\"abc123\"").
  void SetInfo(const std::string& name, const std::string& labels);

  RegistrySnapshot Snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::string> infos_;
};

}  // namespace obs
}  // namespace dbph

#endif  // DBPH_OBS_METRICS_H_
