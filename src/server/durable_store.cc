#include "server/durable_store.h"

#include <sys/stat.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/macros.h"
#include "common/stopwatch.h"
#include "server/untrusted_server.h"

namespace dbph {
namespace server {

namespace {

/// Checkpoint file: magic + version + last covered LSN + state image.
constexpr uint32_t kSnapshotMagic = 0x44425043;  // "DBPC"
constexpr uint32_t kSnapshotVersion = 1;

Status EnsureDirectory(const std::string& dir) {
  struct stat st;
  if (::stat(dir.c_str(), &st) == 0) {
    if (!S_ISDIR(st.st_mode)) {
      return Status::InvalidArgument(
          "'" + dir + "' exists and is not a directory (the durable store "
          "takes a directory; legacy single-file snapshots are not "
          "auto-migrated — load the file with LoadFrom and checkpoint)");
    }
    return Status::OK();
  }
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal("mkdir '" + dir + "': " + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

DurableStore::DurableStore(UntrustedServer* server, std::string dir,
                           DurableStoreOptions options)
    : server_(server), dir_(std::move(dir)), options_(options) {}

DurableStore::~DurableStore() {
  // Crash-equivalent teardown: no checkpoint, no sync. Hooks must come
  // off (they capture `this`) and the thread must join.
  if (background_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(background_mutex_);
      stop_background_ = true;
    }
    background_cv_.notify_all();
    background_.join();
  }
  if (open_) {
    server_->SetMutationHook(nullptr);
    server_->SetFlushHook(nullptr);
  }
}

Status DurableStore::Open() {
  if (open_) return Status::FailedPrecondition("durable store already open");
  DBPH_RETURN_IF_ERROR(EnsureDirectory(dir_));

  obs::MetricsRegistry* registry = server_->metrics();
  ins_.fsync_latency =
      registry->GetHistogram("dbph_wal_fsync_seconds", obs::Unit::kMicros);
  ins_.checkpoint_latency =
      registry->GetHistogram("dbph_checkpoint_seconds", obs::Unit::kMicros);
  ins_.group_batch = registry->GetHistogram("dbph_wal_group_commit_batch_size",
                                            obs::Unit::kCount);
  ins_.appends = registry->GetCounter("dbph_wal_append_records_total");
  ins_.checkpoints = registry->GetCounter("dbph_checkpoints_total");
  ins_.group_syncs = registry->GetCounter("dbph_wal_group_syncs_total");
  ins_.replayed = registry->GetCounter("dbph_wal_replayed_records_total");
  ins_.wal_bytes = registry->GetGauge("dbph_wal_bytes");

  // 1. Snapshot, if one exists.
  uint64_t snapshot_lsn = 0;
  bool have_snapshot = false;
  {
    auto read = storage::ReadWholeFile(snapshot_path());
    if (!read.ok() && read.status().code() != StatusCode::kNotFound) {
      return read.status();
    }
    if (read.ok()) {
      const Bytes& data = *read;
      ByteReader reader(data);
      DBPH_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadUint32());
      if (magic != kSnapshotMagic) {
        return Status::DataLoss("bad snapshot magic in " + snapshot_path());
      }
      DBPH_ASSIGN_OR_RETURN(uint32_t version, reader.ReadUint32());
      if (version != kSnapshotVersion) {
        return Status::DataLoss("unsupported snapshot version");
      }
      DBPH_ASSIGN_OR_RETURN(snapshot_lsn, reader.ReadUint64());
      DBPH_ASSIGN_OR_RETURN(Bytes image, reader.ReadRaw(reader.remaining()));
      DBPH_RETURN_IF_ERROR(server_->RestoreState(image));
      have_snapshot = true;
    }
  }
  next_lsn_ = snapshot_lsn + 1;

  // 2. WAL: scan, truncate any torn tail, replay the suffix above the
  // snapshot's LSN. Replay re-dispatches the logged envelopes; handlers
  // are deterministic, so this rebuilds byte-identical state.
  storage::WriteAheadLog::Options wal_options;
  wal_options.sync_mode = options_.sync_mode;
  DBPH_ASSIGN_OR_RETURN(storage::WriteAheadLog wal,
                        storage::WriteAheadLog::Open(wal_path(), wal_options));
  wal_ = std::make_unique<storage::WriteAheadLog>(std::move(wal));
  recovered_torn_tail_.store(wal_->recovered_torn_tail());
  uint64_t replayed = 0;
  for (const storage::WriteAheadLog::Record& record : wal_->TakeRecovered()) {
    if (record.lsn < next_lsn_) continue;  // already in the snapshot
    // A logged envelope that originally failed (e.g. kAlreadyExists)
    // fails identically on replay; errors are part of the history.
    (void)server_->HandleRequest(record.payload);
    next_lsn_ = record.lsn + 1;
    ++replayed;
  }
  replayed_records_.store(replayed);
  ins_.replayed->Add(replayed);
  ins_.wal_bytes->Set(static_cast<int64_t>(wal_->size_bytes()));
  // Replay is recovery, not observation: Eve's transcript is volatile.
  server_->mutable_observations()->Clear();

  // 3. Go live: hooks route every mutation through the WAL (inside the
  // dispatch lock) and kFlush to a real fsync.
  open_ = true;
  server_->SetMutationHook(
      [this](const protocol::Envelope& envelope) {
        return AppendMutation(envelope);
      });
  server_->SetFlushHook([this] { return Flush(); });

  // A fresh directory (or a replayed log) gets a checkpoint immediately,
  // so the common restart path is snapshot-only.
  if (!have_snapshot || replayed > 0) {
    DBPH_RETURN_IF_ERROR(Checkpoint());
  }

  if (options_.background_thread) {
    if (options_.sync_interval_ms <= 0) {
      return Status::InvalidArgument("sync_interval_ms must be > 0");
    }
    background_ = std::thread([this] { BackgroundLoop(); });
  }
  return Status::OK();
}

Status DurableStore::Close() {
  if (!open_) return Status::OK();
  if (background_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(background_mutex_);
      stop_background_ = true;
    }
    background_cv_.notify_all();
    background_.join();
  }
  Status final_checkpoint = Checkpoint();
  server_->SetMutationHook(nullptr);
  server_->SetFlushHook(nullptr);
  {
    std::lock_guard<std::mutex> lock(wal_mutex_);
    wal_->Close();
  }
  open_ = false;
  return final_checkpoint;
}

Status DurableStore::AppendMutation(const protocol::Envelope& envelope) {
  // Caller holds the dispatch lock: appends are totally ordered and the
  // LSN sequence is gapless in apply order.
  const bool timed = server_->metrics_enabled();
  std::lock_guard<std::mutex> lock(wal_mutex_);
  Stopwatch watch;
  DBPH_RETURN_IF_ERROR(wal_->Append(next_lsn_, envelope.Serialize()));
  if (timed && options_.sync_mode == storage::WalSyncMode::kAlways) {
    // kAlways appends fsync inline: the append latency IS the fsync
    // latency, to first order. kBatch fsyncs are timed at the sync site.
    ins_.fsync_latency->Record(static_cast<uint64_t>(watch.ElapsedMicros()));
  }
  ++next_lsn_;
  ++group_pending_records_;
  wal_records_.fetch_add(1, std::memory_order_relaxed);
  ins_.appends->Add();
  ins_.wal_bytes->Set(static_cast<int64_t>(wal_->size_bytes()));
  return Status::OK();
}

Status DurableStore::Flush() {
  const bool timed = server_->metrics_enabled();
  std::lock_guard<std::mutex> lock(wal_mutex_);
  const bool was_unsynced = wal_->unsynced_bytes() > 0;
  Stopwatch watch;
  Status status = wal_->Sync();
  if (timed && was_unsynced && status.ok()) {
    ins_.fsync_latency->Record(static_cast<uint64_t>(watch.ElapsedMicros()));
  }
  if (status.ok()) group_pending_records_ = 0;
  return status;
}

Status DurableStore::Checkpoint() {
  return server_->WithDispatchLock([this] { return CheckpointLocked(); });
}

Status DurableStore::CheckpointLocked() {
  // Dispatch is quiescent: next_lsn_ - 1 is exactly the last applied
  // mutation, and the serialized state contains all of them.
  Stopwatch watch;
  DBPH_ASSIGN_OR_RETURN(Bytes image, server_->SerializeState());
  Bytes snapshot;
  AppendUint32(&snapshot, kSnapshotMagic);
  AppendUint32(&snapshot, kSnapshotVersion);
  AppendUint64(&snapshot, next_lsn_ - 1);
  snapshot.insert(snapshot.end(), image.begin(), image.end());
  DBPH_RETURN_IF_ERROR(storage::AtomicWriteFile(snapshot_path(), snapshot));
  // Crash window here (snapshot renamed, WAL not yet trimmed) is safe:
  // every logged LSN is ≤ the snapshot's, so replay skips them all.
  {
    std::lock_guard<std::mutex> lock(wal_mutex_);
    DBPH_RETURN_IF_ERROR(wal_->Reset());
    group_pending_records_ = 0;
    ins_.wal_bytes->Set(static_cast<int64_t>(wal_->size_bytes()));
  }
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  ins_.checkpoints->Add();
  if (server_->metrics_enabled()) {
    ins_.checkpoint_latency->Record(
        static_cast<uint64_t>(watch.ElapsedMicros()));
  }
  return Status::OK();
}

void DurableStore::BackgroundLoop() {
  auto last_checkpoint = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lk(background_mutex_);
  while (!stop_background_) {
    background_cv_.wait_for(
        lk, std::chrono::milliseconds(options_.sync_interval_ms));
    if (stop_background_) break;
    lk.unlock();

    // Group commit: one fsync covers every append since the last tick.
    const bool timed = server_->metrics_enabled();
    size_t wal_bytes = 0;
    {
      std::lock_guard<std::mutex> lock(wal_mutex_);
      if (options_.sync_mode == storage::WalSyncMode::kBatch &&
          wal_->unsynced_bytes() > 0) {
        uint64_t batch = group_pending_records_;
        Stopwatch watch;
        if (wal_->Sync().ok()) {
          group_syncs_.fetch_add(1, std::memory_order_relaxed);
          ins_.group_syncs->Add();
          if (timed) {
            ins_.fsync_latency->Record(
                static_cast<uint64_t>(watch.ElapsedMicros()));
          }
          ins_.group_batch->Record(batch);
          group_pending_records_ = 0;
        }
      }
      wal_bytes = wal_->size_bytes();
    }

    auto now = std::chrono::steady_clock::now();
    bool by_size = options_.checkpoint_wal_bytes > 0 &&
                   wal_bytes >= options_.checkpoint_wal_bytes;
    bool by_time =
        options_.checkpoint_interval_ms > 0 && wal_bytes > 0 &&
        now - last_checkpoint >=
            std::chrono::milliseconds(options_.checkpoint_interval_ms);
    if (by_size || by_time) {
      if (Checkpoint().ok()) last_checkpoint = now;
    }

    lk.lock();
  }
}

DurableStore::Stats DurableStore::stats() const {
  Stats stats;
  stats.wal_records = wal_records_.load(std::memory_order_relaxed);
  stats.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  stats.group_syncs = group_syncs_.load(std::memory_order_relaxed);
  stats.replayed_records = replayed_records_.load(std::memory_order_relaxed);
  stats.recovered_torn_tail = recovered_torn_tail_.load();
  {
    std::lock_guard<std::mutex> lock(wal_mutex_);
    if (wal_) stats.wal_bytes = wal_->size_bytes();
  }
  return stats;
}

}  // namespace server
}  // namespace dbph
