#include "server/untrusted_server.h"

#include <algorithm>
#include <cassert>
#include <ctime>

#include "common/logging.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "storage/wal.h"
#include "swp/search.h"

// Build metadata for dbph_build_info: CMake injects the git describe
// string; a build outside the tree (or without git) falls back.
#ifndef DBPH_GIT_DESCRIBE
#define DBPH_GIT_DESCRIBE "unknown"
#endif
#ifndef DBPH_VERSION
#define DBPH_VERSION "0.7"
#endif

namespace dbph {
namespace server {

// --------------------------------------------------------- observability

void UntrustedServer::InitInstruments() {
  using obs::Unit;
  ins_.requests = metrics_.GetCounter("dbph_requests_total");
  ins_.errors = metrics_.GetCounter("dbph_op_errors_total");
  ins_.slow_queries = metrics_.GetCounter("dbph_slow_queries_total");
  ins_.select_scan = metrics_.GetCounter("dbph_select_scan_total");
  ins_.select_index = metrics_.GetCounter("dbph_select_index_total");
  ins_.attestations = metrics_.GetCounter("dbph_integrity_attestations_total");
  ins_.parse = metrics_.GetHistogram("dbph_query_parse_seconds", Unit::kMicros);
  ins_.lock_wait =
      metrics_.GetHistogram("dbph_dispatch_lock_wait_seconds", Unit::kMicros);
  ins_.handle =
      metrics_.GetHistogram("dbph_dispatch_handle_seconds", Unit::kMicros);
  ins_.plan = metrics_.GetHistogram("dbph_query_plan_seconds", Unit::kMicros);
  ins_.execute_scan =
      metrics_.GetHistogram("dbph_query_execute_scan_seconds", Unit::kMicros);
  ins_.execute_index =
      metrics_.GetHistogram("dbph_query_execute_index_seconds", Unit::kMicros);
  ins_.proof_build = metrics_.GetHistogram(
      "dbph_integrity_proof_build_seconds", Unit::kMicros);
  ins_.serialize =
      metrics_.GetHistogram("dbph_query_serialize_seconds", Unit::kMicros);
  ins_.select_total =
      metrics_.GetHistogram("dbph_select_seconds", Unit::kMicros);
  ins_.select_result_size =
      metrics_.GetHistogram("dbph_select_result_size", Unit::kCount);
  ins_.relations = metrics_.GetGauge("dbph_server_relations");
  ins_.index_trapdoors = metrics_.GetGauge("dbph_index_trapdoors");
  ins_.index_postings = metrics_.GetGauge("dbph_index_postings");
  ins_.index_hits = metrics_.GetGauge("dbph_index_hits");
  ins_.index_misses = metrics_.GetGauge("dbph_index_misses");
  ins_.index_memoized = metrics_.GetGauge("dbph_index_memoized");
  ins_.index_append_evals = metrics_.GetGauge("dbph_index_append_evals");
  ins_.index_invalidations = metrics_.GetGauge("dbph_index_invalidations");
  ins_.index_at_capacity =
      metrics_.GetGauge("dbph_index_relations_at_capacity");
  metrics_.SetInfo("dbph_build_info", std::string("version=\"") + DBPH_VERSION +
                                          "\",revision=\"" DBPH_GIT_DESCRIBE
                                          "\"");
  // Unix wall clock at construction, so scrapes compute uptime and spot
  // restarts (the Prometheus convention for this metric name).
  metrics_.GetGauge("dbph_process_start_time_seconds")
      ->Set(static_cast<int64_t>(std::time(nullptr)));
  if (runtime_options_.enable_leakage) {
    obs::leakage::LeakageOptions leakage_options;
    leakage_options.top_k = runtime_options_.leakage_topk;
    leakage_options.alert_advantage_millis =
        runtime_options_.leakage_alert_millis;
    leakage_options.salt = runtime_options_.leakage_salt;
    auditor_ = std::make_unique<obs::leakage::LeakageAuditor>(leakage_options,
                                                              &metrics_);
  }
}

namespace {

/// Wire-op slug for per-op counters and the slow-query log. A fixed
/// function of the type byte — never of the payload.
const char* OpSlug(protocol::MessageType type) {
  using protocol::MessageType;
  switch (type) {
    case MessageType::kStoreRelation:
      return "store";
    case MessageType::kSelect:
      return "select";
    case MessageType::kDropRelation:
      return "drop";
    case MessageType::kAppendTuples:
      return "append";
    case MessageType::kDeleteWhere:
      return "delete";
    case MessageType::kFetchRelation:
      return "fetch";
    case MessageType::kBatchRequest:
      return "batch";
    case MessageType::kPing:
      return "ping";
    case MessageType::kFlush:
      return "flush";
    case MessageType::kExplain:
      return "explain";
    case MessageType::kAttestRoot:
      return "attest";
    case MessageType::kStats:
      return "stats";
    case MessageType::kLeakageReport:
      return "leakage";
    default:
      return "other";
  }
}

}  // namespace

obs::Counter* UntrustedServer::OpCounter(protocol::MessageType type) {
  uint8_t key = static_cast<uint8_t>(type);
  obs::Counter* counter = op_counters_[key];
  if (counter != nullptr) return counter;
  counter = metrics_.GetCounter(
      std::string("dbph_op_") + OpSlug(type) + "_total");
  op_counters_[key] = counter;
  return counter;
}

namespace {

// Ring entries hold micros as uint32 (2^32 us ~ 71 minutes; anything
// slower saturates, which the log2 buckets cannot distinguish anyway).
uint32_t SaturateU32(uint64_t value) {
  return value > 0xffffffffull ? 0xffffffffu : static_cast<uint32_t>(value);
}

}  // namespace

void UntrustedServer::RecordRequestMetrics(
    protocol::MessageType request_type, protocol::MessageType response_type,
    uint64_t handle_micros) {
  cur_.op = static_cast<uint8_t>(request_type);
  if (response_type == protocol::MessageType::kError) {
    cur_.flags |= PendingRequestStat::kIsError;
  }
  if (request_type == protocol::MessageType::kSelect) {
    cur_.flags |= PendingRequestStat::kIsSelect;
  }
  cur_.parse_micros = SaturateU32(trace_.parse_micros);
  cur_.lock_wait_micros = SaturateU32(trace_.lock_wait_micros);
  cur_.handle_micros = SaturateU32(handle_micros);
  cur_.serialize_micros = SaturateU32(trace_.serialize_micros);
  cur_.total_micros = SaturateU32(trace_.total_micros);
  cur_.result_size = SaturateU32(trace_.result_size);
  pending_[pending_count_++] = cur_;
  if (pending_count_ == kPendingRingSize) FlushPendingStatsLocked();
  if (runtime_options_.slow_query_ms > 0 &&
      trace_.total_micros >=
          static_cast<uint64_t>(runtime_options_.slow_query_ms) * 1000) {
    ins_.slow_queries->Add();
    // Redaction contract (docs/OPERATIONS.md): metadata and timings
    // only; trapdoor and ciphertext bytes never reach the log.
    DBPH_LOG(Warning) << "slow query: " << trace_.Describe();
  }
}

void UntrustedServer::FlushPendingStatsLocked() {
  if (pending_count_ == 0) return;
  // Local plain accumulation first, one Merge/Add per instrument after:
  // a flush of N entries pays one relaxed atomic add per touched bucket,
  // not 3 RMWs per recorded value — the entries overwhelmingly hit the
  // same handful of buckets.
  obs::HistogramDelta parse, lock_wait, handle, serialize, select_total,
      result_size, plan, execute_index, execute_scan, proof;
  uint64_t errors = 0, index_queries = 0, scan_queries = 0;
  std::array<uint32_t, 256> op_counts{};
  for (size_t i = 0; i < pending_count_; ++i) {
    const PendingRequestStat& e = pending_[i];
    ++op_counts[e.op];
    if (e.flags & PendingRequestStat::kIsError) ++errors;
    parse.Add(e.parse_micros);
    lock_wait.Add(e.lock_wait_micros);
    handle.Add(e.handle_micros);
    serialize.Add(e.serialize_micros);
    if (e.flags & PendingRequestStat::kIsSelect) {
      select_total.Add(e.total_micros);
      result_size.Add(e.result_size);
    }
    if (e.flags & PendingRequestStat::kRanPipeline) plan.Add(e.plan_micros);
    if (e.flags & PendingRequestStat::kUsedIndex) {
      index_queries += e.index_queries;
      execute_index.Add(e.execute_index_micros);
    }
    if (e.flags & PendingRequestStat::kUsedScan) {
      scan_queries += e.scan_queries;
      execute_scan.Add(e.execute_scan_micros);
    }
    if (e.flags & PendingRequestStat::kBuiltProof) proof.Add(e.proof_micros);
  }
  ins_.requests->Add(pending_count_);
  for (size_t op = 0; op < op_counts.size(); ++op) {
    if (op_counts[op] != 0) {
      OpCounter(static_cast<protocol::MessageType>(op))->Add(op_counts[op]);
    }
  }
  if (errors != 0) ins_.errors->Add(errors);
  if (index_queries != 0) ins_.select_index->Add(index_queries);
  if (scan_queries != 0) ins_.select_scan->Add(scan_queries);
  ins_.parse->Merge(parse);
  ins_.lock_wait->Merge(lock_wait);
  ins_.handle->Merge(handle);
  ins_.serialize->Merge(serialize);
  ins_.select_total->Merge(select_total);
  ins_.select_result_size->Merge(result_size);
  ins_.plan->Merge(plan);
  ins_.execute_index->Merge(execute_index);
  ins_.execute_scan->Merge(execute_scan);
  ins_.proof_build->Merge(proof);
  pending_count_ = 0;
}

void UntrustedServer::RefreshGaugesLocked() {
  // Both read paths (kStats dispatch, CollectStats/scrape) come through
  // here, so staged request entries are always folded before a snapshot.
  FlushPendingStatsLocked();
  ins_.relations->Set(static_cast<int64_t>(relations_.size()));
  planner::TrapdoorIndex::Stats totals;
  int64_t trapdoors = 0;
  int64_t postings = 0;
  int64_t at_capacity = 0;
  for (const auto& [name, stored] : relations_) {
    const planner::TrapdoorIndex::Stats& stats = stored.index.stats();
    totals.hits += stats.hits;
    totals.misses += stats.misses;
    totals.memoized += stats.memoized;
    totals.append_evals += stats.append_evals;
    totals.invalidations += stats.invalidations;
    trapdoors += static_cast<int64_t>(stored.index.num_trapdoors());
    postings += static_cast<int64_t>(stored.index.num_postings());
    if (stored.index.AtCapacity()) ++at_capacity;
  }
  ins_.index_hits->Set(static_cast<int64_t>(totals.hits));
  ins_.index_misses->Set(static_cast<int64_t>(totals.misses));
  ins_.index_memoized->Set(static_cast<int64_t>(totals.memoized));
  ins_.index_append_evals->Set(static_cast<int64_t>(totals.append_evals));
  ins_.index_invalidations->Set(static_cast<int64_t>(totals.invalidations));
  ins_.index_trapdoors->Set(trapdoors);
  ins_.index_postings->Set(postings);
  ins_.index_at_capacity->Set(at_capacity);
  if (auditor_ != nullptr) auditor_->RefreshMetrics();
}

obs::RegistrySnapshot UntrustedServer::CollectStats() {
  std::lock_guard<std::mutex> lock(dispatch_mutex_);
  RefreshGaugesLocked();
  return metrics_.Snapshot();
}

Status UntrustedServer::StoreRelation(
    const core::EncryptedRelation& relation) {
  if (relations_.count(relation.name) > 0) {
    return Status::AlreadyExists("relation '" + relation.name +
                                 "' already stored");
  }
  StoredRelation stored;
  stored.check_length = relation.check_length;
  stored.index.set_max_trapdoors(runtime_options_.max_indexed_trapdoors);
  stored.index.set_max_append_evals(runtime_options_.max_index_append_evals);
  stored.records.reserve(relation.documents.size());
  const bool integrity = runtime_options_.enable_integrity;
  std::vector<crypto::MerkleTree::Hash> leaves;
  if (integrity) leaves.reserve(relation.documents.size());
  for (const auto& doc : relation.documents) {
    Bytes serialized;
    doc.AppendTo(&serialized);
    storage::RecordId rid = heap_.Insert(serialized);
    if (integrity) {
      stored.position_of[rid.Pack()] = stored.records.size();
      leaves.push_back(crypto::MerkleTree::LeafHash(serialized));
    }
    stored.records.push_back(rid);
  }
  if (integrity) {
    stored.tree.Assign(std::move(leaves));
    stored.epoch = 1;
  }
  log_.RecordStore(relation.name, relation.documents.size(),
                   relation.CiphertextBytes());
  relations_.emplace(relation.name, std::move(stored));
  return Status::OK();
}

Status UntrustedServer::DropRelation(const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + name + "' not stored");
  }
  for (const auto& rid : it->second.records) {
    DBPH_RETURN_IF_ERROR(heap_.Delete(rid));
  }
  relations_.erase(it);
  return Status::OK();
}

Result<size_t> UntrustedServer::RelationSize(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + name + "' not stored");
  }
  return it->second.records.size();
}

Result<std::vector<swp::EncryptedDocument>> UntrustedServer::Select(
    const core::EncryptedQuery& query) {
  // One query through the same plan/execute pipeline as a batch — the
  // planner decides scan vs index; logging and results are identical to
  // the historical sequential scan by the pipeline's contract.
  auto results = SelectBatch({query});
  return std::move(results[0]);
}

Status UntrustedServer::AttestRoot(const std::string& name, uint64_t epoch,
                                   const crypto::MerkleTree::Hash& root,
                                   const Bytes& signature) {
  if (!runtime_options_.enable_integrity) {
    return Status::FailedPrecondition("integrity disabled on this server");
  }
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + name + "' not stored");
  }
  if (signature.size() != 32) {
    return Status::InvalidArgument("attestation signature must be 32 bytes");
  }
  // Eve cannot verify the HMAC (she has no keys) but she refuses an
  // attestation of a state she does not hold: storing it would hand the
  // next verifier a signature that never matches a proof.
  if (epoch != it->second.epoch || root != it->second.tree.Root()) {
    return Status::FailedPrecondition(
        "attestation does not match the server's current (epoch, root)");
  }
  it->second.attested_epoch = epoch;
  it->second.root_signature = signature;
  if (runtime_options_.enable_metrics) ins_.attestations->Add();
  return Status::OK();
}

protocol::ResultProof UntrustedServer::BuildProof(
    const StoredRelation& stored, std::vector<uint64_t> positions) const {
  protocol::ResultProof proof;
  proof.epoch = stored.epoch;
  proof.leaf_count = stored.tree.size();
  proof.root = stored.tree.Root();
  if (stored.attested_epoch == stored.epoch) {
    proof.root_signature = stored.root_signature;
  }
  proof.siblings = stored.tree.SubsetProof(positions);
  proof.positions = std::move(positions);
  return proof;
}

runtime::ThreadPool* UntrustedServer::pool() {
  if (!pool_) {
    pool_ = std::make_unique<runtime::ThreadPool>(runtime_options_.num_threads);
  }
  return pool_.get();
}

size_t UntrustedServer::ShardCount() {
  if (runtime_options_.num_shards > 0) return runtime_options_.num_shards;
  return 4 * pool()->num_threads();
}

planner::ExecutionContext UntrustedServer::ContextFor(StoredRelation* stored) {
  planner::ExecutionContext ctx;
  ctx.heap = &heap_;
  ctx.records = &stored->records;
  ctx.check_length = stored->check_length;
  ctx.num_shards = ShardCount();
  ctx.index =
      runtime_options_.enable_trapdoor_index ? &stored->index : nullptr;
  return ctx;
}

std::vector<Result<std::vector<swp::EncryptedDocument>>>
UntrustedServer::SelectBatch(const std::vector<core::EncryptedQuery>& queries) {
  std::vector<SelectOutcome> outcomes = SelectBatchInternal(queries);
  std::vector<Result<std::vector<swp::EncryptedDocument>>> results;
  results.reserve(outcomes.size());
  for (SelectOutcome& outcome : outcomes) {
    results.push_back(std::move(outcome.docs));
  }
  return results;
}

std::vector<UntrustedServer::SelectOutcome> UntrustedServer::SelectBatchInternal(
    const std::vector<core::EncryptedQuery>& queries) {
  // Resolve each query's relation into a planner task; unresolved
  // queries carry their error through the pipeline untouched.
  std::vector<planner::SelectTask> tasks(queries.size());
  std::vector<StoredRelation*> resolved(queries.size(), nullptr);
  bool any_resolved = false;
  for (size_t i = 0; i < queries.size(); ++i) {
    auto it = relations_.find(queries[i].relation);
    if (it == relations_.end()) {
      tasks[i].resolution =
          Status::NotFound("relation '" + queries[i].relation + "' not stored");
      continue;
    }
    tasks[i].ctx = ContextFor(&it->second);
    tasks[i].query = &queries[i];
    resolved[i] = &it->second;
    any_resolved = true;
  }

  const bool timed = runtime_options_.enable_metrics;
  planner::PlanExecutor executor(any_resolved ? pool() : nullptr);
  planner::PlanExecutor::ExecuteTiming timing;
  std::vector<planner::PlannedOutcome> outcomes =
      executor.Execute(tasks, timed ? &timing : nullptr);
  if (timed) {
    trace_.plan_micros += timing.plan_micros;
    trace_.execute_micros += timing.index_fetch_micros + timing.scan_micros;
    trace_.execute_index_micros += timing.index_fetch_micros;
    trace_.execute_scan_micros += timing.scan_micros;
    cur_.flags |= PendingRequestStat::kRanPipeline;
    cur_.plan_micros += SaturateU32(timing.plan_micros);
    if (timing.index_queries > 0) {
      trace_.used_index = true;
      cur_.flags |= PendingRequestStat::kUsedIndex;
      cur_.index_queries += SaturateU32(timing.index_queries);
      cur_.execute_index_micros += SaturateU32(timing.index_fetch_micros);
    }
    if (timing.scan_queries > 0) {
      cur_.flags |= PendingRequestStat::kUsedScan;
      cur_.scan_queries += SaturateU32(timing.scan_queries);
      cur_.execute_scan_micros += SaturateU32(timing.scan_micros);
    }
    if (trace_.relation.empty() && !queries.empty()) {
      trace_.relation = queries.front().relation;
    }
  }

  // Logging happens here, on the dispatch thread, in query order — the
  // log is indistinguishable from the same selects arriving one by one,
  // and (by the pipeline's contract) from a sequential scan regardless
  // of the access path each query took.
  const bool integrity = runtime_options_.enable_integrity;
  std::vector<SelectOutcome> results(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    if (!tasks[i].resolution.ok()) {
      results[i].docs = tasks[i].resolution;
      continue;
    }
    if (!outcomes[i].status.ok()) {
      results[i].docs = outcomes[i].status;
      continue;
    }
    QueryObservation observation;
    observation.relation = queries[i].relation;
    queries[i].trapdoor.AppendTo(&observation.trapdoor_bytes);
    std::vector<swp::EncryptedDocument> docs;
    docs.reserve(outcomes[i].matches.size());
    for (runtime::ShardMatch& match : outcomes[i].matches) {
      observation.matched_records.push_back(match.rid.Pack());
      if (integrity) {
        // Matches arrive in storage order (the pipeline's contract), so
        // these leaf positions come out sorted — exactly what the proof
        // builder and the verifier's recursion expect.
        results[i].positions.push_back(
            resolved[i]->position_of.at(match.rid.Pack()));
      }
      docs.push_back(std::move(match.doc));
    }
    if (auditor_ != nullptr) {
      // The auditor consumes exactly what the observation entry records:
      // relation, trapdoor bytes (digested immediately), matched count,
      // and which access path answered.
      auditor_->RecordQuery(
          queries[i].relation, observation.trapdoor_bytes, docs.size(),
          outcomes[i].plan.path == planner::AccessPath::kIndexLookup);
    }
    log_.RecordQuery(std::move(observation));
    if (timed) trace_.result_size += docs.size();
    results[i].docs = std::move(docs);
    results[i].stored = resolved[i];
  }
  return results;
}

Result<protocol::PlanReport> UntrustedServer::Explain(
    const core::EncryptedQuery& query) {
  auto it = relations_.find(query.relation);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + query.relation + "' not stored");
  }
  planner::ExecutionContext ctx = ContextFor(&it->second);
  Bytes trapdoor_bytes;
  query.trapdoor.AppendTo(&trapdoor_bytes);
  planner::QueryPlan plan = planner::PlanSelect(
      ctx, trapdoor_bytes, /*postings_out=*/nullptr, /*record_stats=*/false);
  return planner::MakePlanReport(ctx, plan, query.relation);
}

Status UntrustedServer::AppendTuples(
    const std::string& name,
    const std::vector<swp::EncryptedDocument>& documents) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + name + "' not stored");
  }
  size_t bytes = 0;
  const bool integrity = runtime_options_.enable_integrity;
  std::vector<std::pair<uint64_t, const swp::EncryptedDocument*>> added;
  added.reserve(documents.size());
  for (const auto& doc : documents) {
    Bytes serialized;
    doc.AppendTo(&serialized);
    bytes += serialized.size();
    storage::RecordId rid = heap_.Insert(serialized);
    if (integrity) {
      it->second.position_of[rid.Pack()] = it->second.records.size();
      it->second.tree.AppendLeaf(crypto::MerkleTree::LeafHash(serialized));
    }
    it->second.records.push_back(rid);
    added.emplace_back(rid.Pack(), &doc);
  }
  // Every append (even an empty one) is an epoch: the client mirrors the
  // same rule, so epochs agree without a negotiation round trip.
  if (integrity) ++it->second.epoch;
  if (runtime_options_.enable_trapdoor_index) {
    // Keep memoized posting lists exact: evaluate every cached trapdoor
    // against just the new documents (what an Eve replaying her log
    // would do) so a later index-path select equals a fresh full scan.
    it->second.index.OnAppend(it->second.check_length, added);
  }
  log_.RecordStore(name, documents.size(), bytes);
  return Status::OK();
}

Result<size_t> UntrustedServer::DeleteWhere(
    const core::EncryptedQuery& query) {
  return DeleteWhereInternal(query, /*removed_out=*/nullptr);
}

Result<size_t> UntrustedServer::DeleteWhereInternal(
    const core::EncryptedQuery& query,
    std::vector<std::pair<uint64_t, Bytes>>* removed_out) {
  auto it = relations_.find(query.relation);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + query.relation + "' not stored");
  }
  const bool integrity = runtime_options_.enable_integrity;
  swp::SwpParams params;
  params.word_length = query.trapdoor.target.size();
  params.check_length = it->second.check_length;

  QueryObservation observation;
  observation.relation = query.relation;
  query.trapdoor.AppendTo(&observation.trapdoor_bytes);

  std::vector<storage::RecordId> kept;
  std::vector<uint64_t> removed_positions;
  size_t position = 0;
  size_t removed = 0;
  for (const auto& rid : it->second.records) {
    DBPH_ASSIGN_OR_RETURN(swp::EncryptedDocument doc,
                          runtime::ReadStoredDocument(heap_, rid));
    if (swp::SearchDocument(params, query.trapdoor, doc).empty()) {
      kept.push_back(rid);
    } else {
      observation.matched_records.push_back(rid.Pack());
      if (integrity) {
        // Pre-delete leaf positions, in storage order: the manifest the
        // client checks against its own tree before mirroring the
        // removal.
        removed_positions.push_back(position);
        if (removed_out != nullptr) {
          Bytes serialized;
          doc.AppendTo(&serialized);
          removed_out->emplace_back(position, std::move(serialized));
        }
      }
      DBPH_RETURN_IF_ERROR(heap_.Delete(rid));
      ++removed;
    }
    ++position;
  }
  it->second.records = std::move(kept);
  if (runtime_options_.enable_metrics) {
    trace_.relation = query.relation;
    trace_.result_size += removed;
  }
  if (integrity) {
    it->second.tree.RemoveSorted(removed_positions);
    ++it->second.epoch;
    if (removed > 0) {
      // Surviving leaves shifted left; rebuild the rid → position map.
      it->second.position_of.clear();
      for (size_t i = 0; i < it->second.records.size(); ++i) {
        it->second.position_of[it->second.records[i].Pack()] = i;
      }
    }
  }
  if (runtime_options_.enable_trapdoor_index) {
    // Deleted records leave every posting list (an already-memoized
    // copy of this delete's trapdoor thereby becomes empty — exactly
    // what a rescan would find). The delete's trapdoor is deliberately
    // NOT memoized fresh: delete traffic would otherwise fill the
    // capped memo with entries only selects repay.
    it->second.index.OnDelete(observation.matched_records);
  }
  if (auditor_ != nullptr) {
    // Deletes leak exactly like selects (matched identities via a full
    // scan), so they feed the same per-relation spectrum.
    auditor_->RecordQuery(query.relation, observation.trapdoor_bytes, removed,
                          /*used_index=*/false);
  }
  log_.RecordQuery(std::move(observation));
  return removed;
}

Result<std::vector<swp::EncryptedDocument>> UntrustedServer::FetchRelation(
    const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + name + "' not stored");
  }
  std::vector<swp::EncryptedDocument> documents;
  documents.reserve(it->second.records.size());
  for (const auto& rid : it->second.records) {
    DBPH_ASSIGN_OR_RETURN(swp::EncryptedDocument doc,
                          runtime::ReadStoredDocument(heap_, rid));
    documents.push_back(std::move(doc));
  }
  return documents;
}

Result<Bytes> UntrustedServer::SerializeState() const {
  Bytes out;
  AppendUint32(&out, 0x44425048);  // "DBPH" magic
  AppendUint32(&out, 2);           // format version
  AppendUint32(&out, static_cast<uint32_t>(relations_.size()));
  for (const auto& [name, stored] : relations_) {
    core::EncryptedRelation relation;
    relation.name = name;
    relation.check_length = stored.check_length;
    DBPH_ASSIGN_OR_RETURN(relation.documents, FetchRelation(name));
    relation.AppendTo(&out);
    // v2: integrity state rides along. The tree itself is NOT persisted
    // — it is a deterministic function of the ciphertext and rebuilds on
    // restore — but the epoch and the owner's signed root cannot be
    // recomputed from what Eve holds, so they round-trip explicitly.
    AppendUint64(&out, stored.epoch);
    AppendUint64(&out, stored.attested_epoch);
    AppendLengthPrefixed(&out, stored.root_signature);
  }
  return out;
}

Status UntrustedServer::SaveTo(const std::string& path) const {
  DBPH_ASSIGN_OR_RETURN(Bytes out, SerializeState());
  // Atomic: a crash mid-save leaves the previous snapshot intact.
  return storage::AtomicWriteFile(path, out);
}

Status UntrustedServer::LoadFrom(const std::string& path) {
  DBPH_ASSIGN_OR_RETURN(Bytes data, storage::ReadWholeFile(path));
  return RestoreState(data);
}

Status UntrustedServer::RestoreState(const Bytes& data) {
  ByteReader reader(data);
  DBPH_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadUint32());
  if (magic != 0x44425048) return Status::DataLoss("bad magic");
  DBPH_ASSIGN_OR_RETURN(uint32_t version, reader.ReadUint32());
  if (version != 1 && version != 2) {
    return Status::DataLoss("unsupported format version");
  }
  DBPH_ASSIGN_OR_RETURN(uint32_t count, reader.ReadUint32());

  // Parse fully before mutating state so a corrupt file cannot leave the
  // server half-loaded.
  struct LoadedRelation {
    core::EncryptedRelation relation;
    uint64_t epoch = 0;
    uint64_t attested_epoch = 0;
    Bytes root_signature;
  };
  std::vector<LoadedRelation> loaded;
  loaded.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    LoadedRelation entry;
    DBPH_ASSIGN_OR_RETURN(entry.relation,
                          core::EncryptedRelation::ReadFrom(&reader));
    if (version >= 2) {
      DBPH_ASSIGN_OR_RETURN(entry.epoch, reader.ReadUint64());
      DBPH_ASSIGN_OR_RETURN(entry.attested_epoch, reader.ReadUint64());
      DBPH_ASSIGN_OR_RETURN(entry.root_signature,
                            reader.ReadLengthPrefixed());
      if (!entry.root_signature.empty() &&
          entry.root_signature.size() != 32) {
        return Status::DataLoss("bad root signature length");
      }
    }
    loaded.push_back(std::move(entry));
  }
  if (!reader.AtEnd()) return Status::DataLoss("trailing bytes");

  relations_.clear();
  heap_ = storage::HeapFile();
  log_.Clear();
  for (const auto& entry : loaded) {
    DBPH_RETURN_IF_ERROR(StoreRelation(entry.relation));
    if (runtime_options_.enable_integrity && entry.epoch != 0) {
      // The tree was rebuilt from ciphertext by StoreRelation (and its
      // root is deterministic); the mutation counter and the owner's
      // signed root come from the image.
      StoredRelation& stored = relations_.at(entry.relation.name);
      stored.epoch = entry.epoch;
      stored.attested_epoch = entry.attested_epoch;
      stored.root_signature = entry.root_signature;
    }
  }
  log_.Clear();  // the re-stores above are not real observations
  return Status::OK();
}

namespace {

/// kSelectResult payload: count | documents | [ResultProof]. The proof is
/// optional trailing data — pre-integrity clients stop after the
/// documents; verifying clients parse it from the remainder.
protocol::Envelope MakeSelectResultEnvelope(
    const std::vector<swp::EncryptedDocument>& docs,
    const protocol::ResultProof* proof) {
  protocol::Envelope response;
  response.type = protocol::MessageType::kSelectResult;
  AppendUint32(&response.payload, static_cast<uint32_t>(docs.size()));
  for (const auto& doc : docs) doc.AppendTo(&response.payload);
  if (proof != nullptr) proof->AppendTo(&response.payload);
  return response;
}

}  // namespace

protocol::Envelope UntrustedServer::MakeSelectResponse(
    SelectOutcome* outcome) {
  if (!outcome->docs.ok()) {
    return protocol::MakeErrorEnvelope(outcome->docs.status());
  }
  if (runtime_options_.enable_integrity && outcome->stored != nullptr) {
    const bool timed = runtime_options_.enable_metrics;
    Stopwatch::Clock::time_point start{};
    if (timed) start = Stopwatch::Clock::now();
    protocol::ResultProof proof =
        BuildProof(*outcome->stored, std::move(outcome->positions));
    if (timed) {
      uint64_t micros = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              Stopwatch::Clock::now() - start)
              .count());
      trace_.proof_micros += micros;
      cur_.flags |= PendingRequestStat::kBuiltProof;
      cur_.proof_micros += SaturateU32(micros);
    }
    return MakeSelectResultEnvelope(*outcome->docs, &proof);
  }
  return MakeSelectResultEnvelope(*outcome->docs, nullptr);
}

protocol::Envelope UntrustedServer::DispatchBatch(
    const protocol::Envelope& request) {
  using protocol::Envelope;
  using protocol::MessageType;
  auto parts = protocol::ParseBatchPayload(request.payload);
  if (!parts.ok()) return protocol::MakeErrorEnvelope(parts.status());

  // Sub-requests execute in order. Maximal runs of consecutive selects
  // become one parallel wave; any mutating operation in between acts as
  // a barrier, so a select always sees every earlier write in its batch.
  std::vector<Envelope> responses(parts->size());
  size_t i = 0;
  while (i < parts->size()) {
    if ((*parts)[i].type != MessageType::kSelect) {
      responses[i] = Dispatch((*parts)[i]);
      ++i;
      continue;
    }
    std::vector<core::EncryptedQuery> wave;
    std::vector<size_t> wave_slots;
    while (i < parts->size() && (*parts)[i].type == MessageType::kSelect) {
      ByteReader reader((*parts)[i].payload);
      auto query = core::EncryptedQuery::ReadFrom(&reader);
      if (!query.ok()) {
        responses[i] = protocol::MakeErrorEnvelope(query.status());
      } else {
        wave.push_back(std::move(*query));
        wave_slots.push_back(i);
      }
      ++i;
    }
    auto results = SelectBatchInternal(wave);
    for (size_t k = 0; k < wave_slots.size(); ++k) {
      responses[wave_slots[k]] = MakeSelectResponse(&results[k]);
    }
  }

  Envelope response;
  response.type = MessageType::kBatchResponse;
  response.payload = protocol::SerializeBatchPayload(responses);
  return response;
}

Status UntrustedServer::LogMutation(const protocol::Envelope& request) {
  if (!mutation_hook_) return Status::OK();
  Status logged = mutation_hook_(request);
  if (!logged.ok()) {
    return Status::Unavailable("durability: " + logged.message());
  }
  return Status::OK();
}

protocol::Envelope UntrustedServer::Dispatch(
    const protocol::Envelope& request) {
  using protocol::Envelope;
  using protocol::MessageType;
  switch (request.type) {
    case MessageType::kStoreRelation: {
      ByteReader reader(request.payload);
      auto relation = core::EncryptedRelation::ReadFrom(&reader);
      if (!relation.ok()) return protocol::MakeErrorEnvelope(relation.status());
      if (Status wal = LogMutation(request); !wal.ok()) {
        return protocol::MakeErrorEnvelope(wal);
      }
      Status status = StoreRelation(*relation);
      if (!status.ok()) return protocol::MakeErrorEnvelope(status);
      Envelope ok;
      ok.type = MessageType::kStoreOk;
      return ok;
    }
    case MessageType::kSelect: {
      ByteReader reader(request.payload);
      auto query = core::EncryptedQuery::ReadFrom(&reader);
      if (!query.ok()) return protocol::MakeErrorEnvelope(query.status());
      auto outcomes = SelectBatchInternal({*query});
      return MakeSelectResponse(&outcomes[0]);
    }
    case MessageType::kExplain: {
      // Plan-only: parses like kSelect, executes nothing, logs nothing
      // (no matches are computed, so there is no query observation — the
      // report is a function of state Eve already holds).
      ByteReader reader(request.payload);
      auto query = core::EncryptedQuery::ReadFrom(&reader);
      if (!query.ok()) return protocol::MakeErrorEnvelope(query.status());
      auto report = Explain(*query);
      if (!report.ok()) return protocol::MakeErrorEnvelope(report.status());
      Envelope response;
      response.type = MessageType::kExplainResult;
      report->AppendTo(&response.payload);
      return response;
    }
    case MessageType::kBatchRequest:
      return DispatchBatch(request);
    case MessageType::kStats: {
      // Keys-free live stats: everything in the snapshot is derived from
      // Eve's own observations (op counts, timings, sizes) — safe to
      // serve to anyone who can already reach the wire. Carries no
      // request payload by definition.
      if (!request.payload.empty()) {
        return protocol::MakeErrorEnvelope(
            Status::InvalidArgument("kStats carries no payload"));
      }
      RefreshGaugesLocked();
      Envelope response;
      response.type = MessageType::kStatsResult;
      metrics_.Snapshot().AppendTo(&response.payload);
      return response;
    }
    case MessageType::kLeakageReport: {
      // The adversary's view of itself: salted tag digests, counts, and
      // derived rates only — never raw trapdoor or ciphertext bytes
      // (the auditor's redaction contract). Carries no request payload.
      if (!request.payload.empty()) {
        return protocol::MakeErrorEnvelope(
            Status::InvalidArgument("kLeakageReport carries no payload"));
      }
      if (auditor_ == nullptr) {
        return protocol::MakeErrorEnvelope(Status::FailedPrecondition(
            "leakage auditor disabled (--leakage=off)"));
      }
      Envelope response;
      response.type = MessageType::kLeakageReportResult;
      auditor_->Report().AppendTo(&response.payload);
      return response;
    }
    case MessageType::kPing: {
      // Keys-free health check: echo the client's cookie. Pings carry no
      // trapdoors and match nothing, so they are not query observations.
      Envelope pong;
      pong.type = MessageType::kPong;
      pong.payload = request.payload;
      return pong;
    }
    case MessageType::kFlush: {
      // Durability point: every mutation acknowledged before this reply
      // is on stable storage. Carries no payload by definition.
      if (!request.payload.empty()) {
        return protocol::MakeErrorEnvelope(
            Status::InvalidArgument("kFlush carries no payload"));
      }
      if (flush_hook_) {
        if (Status flushed = flush_hook_(); !flushed.ok()) {
          return protocol::MakeErrorEnvelope(
              Status::Unavailable("durability: " + flushed.message()));
        }
      }
      Envelope ok;
      ok.type = MessageType::kFlushOk;
      return ok;
    }
    case MessageType::kDropRelation: {
      if (Status wal = LogMutation(request); !wal.ok()) {
        return protocol::MakeErrorEnvelope(wal);
      }
      Status status = DropRelation(ToString(request.payload));
      if (!status.ok()) return protocol::MakeErrorEnvelope(status);
      Envelope ok;
      ok.type = MessageType::kDropOk;
      return ok;
    }
    case MessageType::kAppendTuples: {
      ByteReader reader(request.payload);
      auto name = reader.ReadLengthPrefixed();
      if (!name.ok()) return protocol::MakeErrorEnvelope(name.status());
      auto documents = swp::ReadDocumentList(&reader);
      if (!documents.ok()) {
        return protocol::MakeErrorEnvelope(documents.status());
      }
      if (Status wal = LogMutation(request); !wal.ok()) {
        return protocol::MakeErrorEnvelope(wal);
      }
      Status status = AppendTuples(ToString(*name), *documents);
      if (!status.ok()) return protocol::MakeErrorEnvelope(status);
      Envelope ok;
      ok.type = MessageType::kAppendOk;
      return ok;
    }
    case MessageType::kDeleteWhere: {
      ByteReader reader(request.payload);
      auto query = core::EncryptedQuery::ReadFrom(&reader);
      if (!query.ok()) return protocol::MakeErrorEnvelope(query.status());
      if (Status wal = LogMutation(request); !wal.ok()) {
        return protocol::MakeErrorEnvelope(wal);
      }
      const bool integrity = runtime_options_.enable_integrity;
      std::vector<std::pair<uint64_t, Bytes>> manifest;
      auto removed =
          DeleteWhereInternal(*query, integrity ? &manifest : nullptr);
      if (!removed.ok()) return protocol::MakeErrorEnvelope(removed.status());
      Envelope response;
      response.type = MessageType::kDeleteResult;
      AppendUint32(&response.payload, static_cast<uint32_t>(*removed));
      if (integrity) {
        // Delete manifest: the pre-delete (leaf position, document)
        // pairs, so the owner can check each removed row against its own
        // tree — hash AND trapdoor match — before mirroring the removal.
        AppendUint32(&response.payload,
                     static_cast<uint32_t>(manifest.size()));
        for (const auto& [position, doc_bytes] : manifest) {
          AppendUint64(&response.payload, position);
          AppendLengthPrefixed(&response.payload, doc_bytes);
        }
      }
      return response;
    }
    case MessageType::kFetchRelation: {
      auto docs = FetchRelation(ToString(request.payload));
      if (!docs.ok()) return protocol::MakeErrorEnvelope(docs.status());
      Envelope response;
      response.type = MessageType::kFetchResult;
      AppendUint32(&response.payload, static_cast<uint32_t>(docs->size()));
      for (const auto& doc : *docs) doc.AppendTo(&response.payload);
      if (runtime_options_.enable_integrity) {
        // Whole-relation completeness proof: positions [0, n) — the
        // client verifies it received every leaf, in order.
        auto it = relations_.find(ToString(request.payload));
        if (it != relations_.end()) {
          std::vector<uint64_t> all(it->second.records.size());
          for (size_t i = 0; i < all.size(); ++i) all[i] = i;
          protocol::ResultProof proof =
              BuildProof(it->second, std::move(all));
          proof.AppendTo(&response.payload);
        }
      }
      return response;
    }
    case MessageType::kAttestRoot: {
      ByteReader reader(request.payload);
      auto name = reader.ReadLengthPrefixed();
      if (!name.ok()) return protocol::MakeErrorEnvelope(name.status());
      auto epoch = reader.ReadUint64();
      if (!epoch.ok()) return protocol::MakeErrorEnvelope(epoch.status());
      auto root_bytes = reader.ReadRaw(32);
      if (!root_bytes.ok()) {
        return protocol::MakeErrorEnvelope(root_bytes.status());
      }
      auto root = crypto::MerkleTree::FromBytes(*root_bytes);
      if (!root.ok()) return protocol::MakeErrorEnvelope(root.status());
      auto signature = reader.ReadRaw(32);
      if (!signature.ok()) {
        return protocol::MakeErrorEnvelope(signature.status());
      }
      if (!reader.AtEnd()) {
        return protocol::MakeErrorEnvelope(
            Status::DataLoss("trailing bytes after attestation"));
      }
      // Attested roots must survive restarts like the ciphertext they
      // bless: WAL-logged before applying, replayed on recovery.
      if (Status wal = LogMutation(request); !wal.ok()) {
        return protocol::MakeErrorEnvelope(wal);
      }
      Status status = AttestRoot(ToString(*name), *epoch, *root, *signature);
      if (!status.ok()) return protocol::MakeErrorEnvelope(status);
      Envelope ok;
      ok.type = MessageType::kAttestOk;
      return ok;
    }
    default:
      return protocol::MakeErrorEnvelope(
          Status::InvalidArgument("unexpected message type"));
  }
}

Bytes UntrustedServer::HandleRequest(const Bytes& request) {
  return HandleRequest(request, nullptr);
}

Bytes UntrustedServer::HandleRequest(const Bytes& request,
                                     const void* dispatcher) {
#ifndef NDEBUG
  const void* bound = bound_dispatcher_.load(std::memory_order_acquire);
  assert((bound == nullptr || bound == dispatcher) &&
         "UntrustedServer has an exclusive dispatcher bound (a running "
         "NetServer); direct HandleRequest calls bypass the single-writer "
         "dispatch loop");
#else
  (void)dispatcher;
#endif
  const bool timed = runtime_options_.enable_metrics;
  // One timestamp per stage boundary, each closing one span and opening
  // the next (5 clock reads per request, not a Reset/Elapsed pair per
  // stage).
  using SteadyClock = Stopwatch::Clock;
  SteadyClock::time_point entered{};
  if (timed) entered = SteadyClock::now();
  auto envelope = protocol::Envelope::Parse(request);
  if (!envelope.ok()) {
    if (timed) ins_.errors->Add();
    return protocol::MakeErrorEnvelope(envelope.status()).Serialize();
  }
  SteadyClock::time_point parsed{};
  if (timed) parsed = SteadyClock::now();
  // Single-writer server loop: concurrent transports queue here; the
  // parallelism lives inside a request (sharded batch waves), not across
  // requests, so storage and the observation log need no finer locking.
  std::lock_guard<std::mutex> lock(dispatch_mutex_);
  if (!timed) return Dispatch(*envelope).Serialize();

  const auto micros_between = [](SteadyClock::time_point from,
                                 SteadyClock::time_point to) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(to - from)
            .count());
  };
  SteadyClock::time_point locked = SteadyClock::now();
  // trace_ and cur_ are members (not locals) so the select pipeline and
  // proof builder — called below Dispatch, still under this lock — can
  // accumulate their stage spans into the same request's entry.
  trace_.Reset();
  cur_ = PendingRequestStat{};
  trace_.op = OpSlug(envelope->type);
  trace_.parse_micros = micros_between(entered, parsed);
  trace_.lock_wait_micros = micros_between(parsed, locked);
  protocol::Envelope response = Dispatch(*envelope);
  SteadyClock::time_point handled = SteadyClock::now();
  Bytes wire = response.Serialize();
  SteadyClock::time_point serialized = SteadyClock::now();
  uint64_t handle_micros = micros_between(locked, handled);
  trace_.serialize_micros = micros_between(handled, serialized);
  trace_.total_micros = trace_.parse_micros + trace_.lock_wait_micros +
                        handle_micros + trace_.serialize_micros;
  RecordRequestMetrics(envelope->type, response.type, handle_micros);
  return wire;
}

}  // namespace server
}  // namespace dbph
