#include "server/untrusted_server.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <ctime>
#include <utility>

#include "common/logging.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "protocol/completeness_proof.h"
#include "storage/wal.h"
#include "swp/search.h"

// Build metadata for dbph_build_info: CMake injects the git describe
// string; a build outside the tree (or without git) falls back.
#ifndef DBPH_GIT_DESCRIBE
#define DBPH_GIT_DESCRIBE "unknown"
#endif
#ifndef DBPH_VERSION
#define DBPH_VERSION "0.7"
#endif

namespace dbph {
namespace server {

// --------------------------------------------------------- observability

void UntrustedServer::InitInstruments() {
  using obs::Unit;
  ins_.requests = metrics_.GetCounter("dbph_requests_total");
  ins_.errors = metrics_.GetCounter("dbph_op_errors_total");
  ins_.slow_queries = metrics_.GetCounter("dbph_slow_queries_total");
  ins_.select_scan = metrics_.GetCounter("dbph_select_scan_total");
  ins_.select_index = metrics_.GetCounter("dbph_select_index_total");
  ins_.scan_match_evals = metrics_.GetCounter("dbph_scan_match_evals_total");
  ins_.attestations = metrics_.GetCounter("dbph_integrity_attestations_total");
  ins_.parse = metrics_.GetHistogram("dbph_query_parse_seconds", Unit::kMicros);
  ins_.lock_wait =
      metrics_.GetHistogram("dbph_dispatch_lock_wait_seconds", Unit::kMicros);
  ins_.handle =
      metrics_.GetHistogram("dbph_dispatch_handle_seconds", Unit::kMicros);
  ins_.plan = metrics_.GetHistogram("dbph_query_plan_seconds", Unit::kMicros);
  ins_.execute_scan =
      metrics_.GetHistogram("dbph_query_execute_scan_seconds", Unit::kMicros);
  ins_.execute_index =
      metrics_.GetHistogram("dbph_query_execute_index_seconds", Unit::kMicros);
  ins_.proof_build = metrics_.GetHistogram(
      "dbph_integrity_proof_build_seconds", Unit::kMicros);
  ins_.serialize =
      metrics_.GetHistogram("dbph_query_serialize_seconds", Unit::kMicros);
  ins_.select_total =
      metrics_.GetHistogram("dbph_select_seconds", Unit::kMicros);
  ins_.select_result_size =
      metrics_.GetHistogram("dbph_select_result_size", Unit::kCount);
  ins_.relations = metrics_.GetGauge("dbph_server_relations");
  ins_.index_trapdoors = metrics_.GetGauge("dbph_index_trapdoors");
  ins_.index_postings = metrics_.GetGauge("dbph_index_postings");
  ins_.index_hits = metrics_.GetGauge("dbph_index_hits");
  ins_.index_misses = metrics_.GetGauge("dbph_index_misses");
  ins_.index_memoized = metrics_.GetGauge("dbph_index_memoized");
  ins_.index_append_evals = metrics_.GetGauge("dbph_index_append_evals");
  ins_.index_invalidations = metrics_.GetGauge("dbph_index_invalidations");
  ins_.index_at_capacity =
      metrics_.GetGauge("dbph_index_relations_at_capacity");
  metrics_.SetInfo("dbph_build_info", std::string("version=\"") + DBPH_VERSION +
                                          "\",revision=\"" DBPH_GIT_DESCRIBE
                                          "\"");
  // Unix wall clock at construction, so scrapes compute uptime and spot
  // restarts (the Prometheus convention for this metric name).
  metrics_.GetGauge("dbph_process_start_time_seconds")
      ->Set(static_cast<int64_t>(std::time(nullptr)));
  if (runtime_options_.enable_leakage) {
    obs::leakage::LeakageOptions leakage_options;
    leakage_options.top_k = runtime_options_.leakage_topk;
    leakage_options.alert_advantage_millis =
        runtime_options_.leakage_alert_millis;
    leakage_options.salt = runtime_options_.leakage_salt;
    auditor_ = std::make_unique<obs::leakage::LeakageAuditor>(leakage_options,
                                                              &metrics_);
  }
}

namespace {

/// Wire-op slug for per-op counters and the slow-query log. A fixed
/// function of the type byte — never of the payload.
const char* OpSlug(protocol::MessageType type) {
  using protocol::MessageType;
  switch (type) {
    case MessageType::kStoreRelation:
      return "store";
    case MessageType::kSelect:
      return "select";
    case MessageType::kDropRelation:
      return "drop";
    case MessageType::kAppendTuples:
      return "append";
    case MessageType::kDeleteWhere:
      return "delete";
    case MessageType::kFetchRelation:
      return "fetch";
    case MessageType::kBatchRequest:
      return "batch";
    case MessageType::kPing:
      return "ping";
    case MessageType::kFlush:
      return "flush";
    case MessageType::kExplain:
      return "explain";
    case MessageType::kAttestRoot:
      return "attest";
    case MessageType::kStats:
      return "stats";
    case MessageType::kLeakageReport:
      return "leakage";
    default:
      return "other";
  }
}

// Ring entries hold micros as uint32 (2^32 us ~ 71 minutes; anything
// slower saturates, which the log2 buckets cannot distinguish anyway).
uint32_t SaturateU32(uint64_t value) {
  return value > 0xffffffffull ? 0xffffffffu : static_cast<uint32_t>(value);
}

uint64_t MicrosBetween(Stopwatch::Clock::time_point from,
                       Stopwatch::Clock::time_point to) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count());
}

}  // namespace

obs::Counter* UntrustedServer::OpCounter(protocol::MessageType type) {
  uint8_t key = static_cast<uint8_t>(type);
  obs::Counter* counter = op_counters_[key];
  if (counter != nullptr) return counter;
  counter = metrics_.GetCounter(
      std::string("dbph_op_") + OpSlug(type) + "_total");
  op_counters_[key] = counter;
  return counter;
}

void UntrustedServer::RecordRequestMetrics(
    const obs::QueryTrace& trace, PendingRequestStat* cur,
    protocol::MessageType request_type, protocol::MessageType response_type,
    uint64_t handle_micros) {
  cur->op = static_cast<uint8_t>(request_type);
  if (response_type == protocol::MessageType::kError) {
    cur->flags |= PendingRequestStat::kIsError;
  }
  if (request_type == protocol::MessageType::kSelect) {
    cur->flags |= PendingRequestStat::kIsSelect;
  }
  cur->parse_micros = SaturateU32(trace.parse_micros);
  cur->lock_wait_micros = SaturateU32(trace.lock_wait_micros);
  cur->handle_micros = SaturateU32(handle_micros);
  cur->serialize_micros = SaturateU32(trace.serialize_micros);
  cur->total_micros = SaturateU32(trace.total_micros);
  cur->result_size = SaturateU32(trace.result_size);
  cur->match_evals = SaturateU32(trace.match_evals);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    pending_[pending_count_++] = *cur;
    if (pending_count_ == kPendingRingSize) FlushPendingStatsLocked();
  }
  if (runtime_options_.slow_query_ms > 0 &&
      trace.total_micros >=
          static_cast<uint64_t>(runtime_options_.slow_query_ms) * 1000) {
    ins_.slow_queries->Add();
    // Redaction contract (docs/OPERATIONS.md): metadata and timings
    // only; trapdoor and ciphertext bytes never reach the log.
    DBPH_LOG(Warning) << "slow query: " << trace.Describe();
  }
}

void UntrustedServer::FlushPendingStatsLocked() {
  if (pending_count_ == 0) return;
  // Local plain accumulation first, one Merge/Add per instrument after:
  // a flush of N entries pays one relaxed atomic add per touched bucket,
  // not 3 RMWs per recorded value — the entries overwhelmingly hit the
  // same handful of buckets.
  obs::HistogramDelta parse, lock_wait, handle, serialize, select_total,
      result_size, plan, execute_index, execute_scan, proof;
  uint64_t errors = 0, index_queries = 0, scan_queries = 0, match_evals = 0;
  std::array<uint32_t, 256> op_counts{};
  for (size_t i = 0; i < pending_count_; ++i) {
    const PendingRequestStat& e = pending_[i];
    ++op_counts[e.op];
    if (e.flags & PendingRequestStat::kIsError) ++errors;
    parse.Add(e.parse_micros);
    lock_wait.Add(e.lock_wait_micros);
    handle.Add(e.handle_micros);
    serialize.Add(e.serialize_micros);
    if (e.flags & PendingRequestStat::kIsSelect) {
      select_total.Add(e.total_micros);
      result_size.Add(e.result_size);
    }
    if (e.flags & PendingRequestStat::kRanPipeline) plan.Add(e.plan_micros);
    if (e.flags & PendingRequestStat::kUsedIndex) {
      index_queries += e.index_queries;
      execute_index.Add(e.execute_index_micros);
    }
    if (e.flags & PendingRequestStat::kUsedScan) {
      scan_queries += e.scan_queries;
      execute_scan.Add(e.execute_scan_micros);
    }
    // Kernel scans and kernel-matched deletes both account evaluations.
    match_evals += e.match_evals;
    if (e.flags & PendingRequestStat::kBuiltProof) proof.Add(e.proof_micros);
  }
  ins_.requests->Add(pending_count_);
  for (size_t op = 0; op < op_counts.size(); ++op) {
    if (op_counts[op] != 0) {
      OpCounter(static_cast<protocol::MessageType>(op))->Add(op_counts[op]);
    }
  }
  if (errors != 0) ins_.errors->Add(errors);
  if (index_queries != 0) ins_.select_index->Add(index_queries);
  if (scan_queries != 0) ins_.select_scan->Add(scan_queries);
  if (match_evals != 0) ins_.scan_match_evals->Add(match_evals);
  ins_.parse->Merge(parse);
  ins_.lock_wait->Merge(lock_wait);
  ins_.handle->Merge(handle);
  ins_.serialize->Merge(serialize);
  ins_.select_total->Merge(select_total);
  ins_.select_result_size->Merge(result_size);
  ins_.plan->Merge(plan);
  ins_.execute_index->Merge(execute_index);
  ins_.execute_scan->Merge(execute_scan);
  ins_.proof_build->Merge(proof);
  pending_count_ = 0;
}

void UntrustedServer::SetIndexGauges(
    const planner::TrapdoorIndex::Stats& totals, int64_t trapdoors,
    int64_t postings, int64_t at_capacity) {
  // Snapshot readers consult frozen index copies through the stats-free
  // Peek and count into the server-level atomics instead; the exported
  // gauges are the sum of both worlds.
  const uint64_t reader_hits =
      reader_index_hits_.load(std::memory_order_relaxed);
  const uint64_t reader_misses =
      reader_index_misses_.load(std::memory_order_relaxed);
  ins_.index_hits->Set(static_cast<int64_t>(totals.hits + reader_hits));
  ins_.index_misses->Set(static_cast<int64_t>(totals.misses + reader_misses));
  ins_.index_memoized->Set(static_cast<int64_t>(totals.memoized));
  ins_.index_append_evals->Set(static_cast<int64_t>(totals.append_evals));
  ins_.index_invalidations->Set(static_cast<int64_t>(totals.invalidations));
  ins_.index_trapdoors->Set(trapdoors);
  ins_.index_postings->Set(postings);
  ins_.index_at_capacity->Set(at_capacity);
  if (auditor_ != nullptr) auditor_->RefreshMetrics();
}

void UntrustedServer::RefreshGaugesLocked() {
  // Every stats read folds staged request entries before snapshotting.
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    FlushPendingStatsLocked();
  }
  ins_.relations->Set(static_cast<int64_t>(relations_.size()));
  planner::TrapdoorIndex::Stats totals;
  int64_t trapdoors = 0;
  int64_t postings = 0;
  int64_t at_capacity = 0;
  for (const auto& [name, stored] : relations_) {
    const planner::TrapdoorIndex::Stats& stats = stored.index.stats();
    totals.hits += stats.hits;
    totals.misses += stats.misses;
    totals.memoized += stats.memoized;
    totals.append_evals += stats.append_evals;
    totals.invalidations += stats.invalidations;
    trapdoors += static_cast<int64_t>(stored.index.num_trapdoors());
    postings += static_cast<int64_t>(stored.index.num_postings());
    if (stored.index.AtCapacity()) ++at_capacity;
  }
  SetIndexGauges(totals, trapdoors, postings, at_capacity);
}

void UntrustedServer::RefreshGaugesFromSnapshot(const ServerSnapshot& snap) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    FlushPendingStatsLocked();
  }
  ins_.relations->Set(static_cast<int64_t>(snap.relations.size()));
  planner::TrapdoorIndex::Stats totals;
  int64_t trapdoors = 0;
  int64_t postings = 0;
  int64_t at_capacity = 0;
  for (const auto& [name, rel] : snap.relations) {
    if (rel->index == nullptr) continue;
    const planner::TrapdoorIndex::Stats& stats = rel->index->stats();
    totals.hits += stats.hits;
    totals.misses += stats.misses;
    totals.memoized += stats.memoized;
    totals.append_evals += stats.append_evals;
    totals.invalidations += stats.invalidations;
    trapdoors += static_cast<int64_t>(rel->index->num_trapdoors());
    postings += static_cast<int64_t>(rel->index->num_postings());
    if (rel->index->AtCapacity()) ++at_capacity;
  }
  SetIndexGauges(totals, trapdoors, postings, at_capacity);
}

obs::RegistrySnapshot UntrustedServer::CollectStats() {
  // Lock-free against the dispatch lock: mutations republish before
  // acknowledging, so the pinned snapshot's derived gauges agree with
  // the live state at every quiescent point.
  std::shared_ptr<const ServerSnapshot> snap = PinSnapshot();
  RefreshGaugesFromSnapshot(*snap);
  return metrics_.Snapshot();
}

// --------------------------------------------------- observation log

void UntrustedServer::RecordStoreObservation(const std::string& relation,
                                             size_t num_documents,
                                             size_t ciphertext_bytes) {
  std::lock_guard<std::mutex> lock(log_mutex_);
  log_.RecordStore(relation, num_documents, ciphertext_bytes);
}

void UntrustedServer::RecordQueryObservation(QueryObservation observation) {
  std::lock_guard<std::mutex> lock(log_mutex_);
  log_.RecordQuery(std::move(observation));
}

// ----------------------------------------------- snapshot publication

void UntrustedServer::MarkDirtyLocked(StoredRelation* stored,
                                      SnapshotDirty level) {
  if (static_cast<uint8_t>(level) > static_cast<uint8_t>(stored->dirty)) {
    stored->dirty = level;
  }
  if (level == SnapshotDirty::kAppend || level == SnapshotDirty::kFull) {
    // Document state changed: new generation. kMeta (index/attestation
    // motion) deliberately keeps the stamp, so a reader's deferred scan
    // memoization stays valid across it.
    stored->doc_generation = ++doc_generation_counter_;
  }
  snapshot_stale_ = true;
}

std::shared_ptr<const RelationSnapshot>
UntrustedServer::BuildRelationSnapshotLocked(
    const StoredRelation& stored) const {
  auto rel = std::make_shared<RelationSnapshot>();
  rel->check_length = stored.check_length;
  rel->num_docs = stored.records.size();
  auto chunk = std::make_shared<SnapshotChunk>();
  chunk->docs.reserve(stored.records.size());
  for (const auto& rid : stored.records) {
    auto bytes = heap_.Get(rid);
    // A heap miss is unreachable (records and heap mutate together
    // under the dispatch lock); an empty doc fails closed at parse time.
    chunk->docs.push_back({rid.Pack(), bytes.ok() ? std::move(*bytes)
                                                  : Bytes{}});
  }
  chunk->Seal();
  rel->chunks.push_back(std::move(chunk));
  rel->chunk_first.push_back(0);
  if (runtime_options_.enable_trapdoor_index) {
    rel->index = std::make_shared<const planner::TrapdoorIndex>(stored.index);
  }
  if (runtime_options_.enable_integrity) {
    rel->tree = std::make_shared<const crypto::MerkleTree>(stored.tree);
    rel->epoch = stored.epoch;
    rel->attested_epoch = stored.attested_epoch;
    rel->root_signature = stored.root_signature;
    rel->search = std::make_shared<const crypto::SearchTree>(stored.search);
    rel->search_signature = stored.search_signature;
  }
  rel->doc_generation = stored.doc_generation;
  rel->word_slots = stored.word_slots;
  rel->use_scan_kernel = runtime_options_.enable_scan_kernel;
  return rel;
}

void UntrustedServer::PublishDirtyLocked() {
  if (!snapshot_stale_) return;
  auto next = std::make_shared<ServerSnapshot>();
  for (auto& [name, stored] : relations_) {
    std::shared_ptr<const RelationSnapshot> rel;
    if (stored.dirty == SnapshotDirty::kNone && stored.published != nullptr) {
      rel = stored.published;
    } else if (stored.published == nullptr ||
               stored.dirty == SnapshotDirty::kFull ||
               (stored.dirty == SnapshotDirty::kAppend &&
                stored.published->chunks.size() + 1 > kMaxSnapshotChunks)) {
      // First publish, arbitrary document churn, or an append stream
      // that exhausted the chunk budget: coalesce back to one chunk.
      rel = BuildRelationSnapshotLocked(stored);
    } else {
      // kMeta / kAppend: the existing document chunks are still exact —
      // share them and refresh only what moved (appended docs as one new
      // sealed chunk; index / tree / epoch / attestation copies).
      auto fresh = std::make_shared<RelationSnapshot>();
      const RelationSnapshot& old = *stored.published;
      fresh->check_length = stored.check_length;
      fresh->num_docs = old.num_docs;
      fresh->chunks = old.chunks;
      fresh->chunk_first = old.chunk_first;
      if (stored.dirty == SnapshotDirty::kAppend &&
          !stored.pending_append.empty()) {
        auto chunk = std::make_shared<SnapshotChunk>();
        chunk->docs = std::move(stored.pending_append);
        chunk->Seal();
        fresh->chunk_first.push_back(fresh->num_docs);
        fresh->num_docs += chunk->docs.size();
        fresh->chunks.push_back(std::move(chunk));
      }
      if (runtime_options_.enable_trapdoor_index) {
        fresh->index =
            std::make_shared<const planner::TrapdoorIndex>(stored.index);
      }
      if (runtime_options_.enable_integrity) {
        fresh->tree = std::make_shared<const crypto::MerkleTree>(stored.tree);
        fresh->epoch = stored.epoch;
        fresh->attested_epoch = stored.attested_epoch;
        fresh->root_signature = stored.root_signature;
        fresh->search =
            std::make_shared<const crypto::SearchTree>(stored.search);
        fresh->search_signature = stored.search_signature;
      }
      fresh->doc_generation = stored.doc_generation;
      fresh->word_slots = stored.word_slots;
      fresh->use_scan_kernel = runtime_options_.enable_scan_kernel;
      rel = std::move(fresh);
    }
    stored.published = rel;
    stored.dirty = SnapshotDirty::kNone;
    stored.pending_append.clear();
    next->relations.emplace(name, std::move(rel));
  }
  // Swap in the new snapshot; the old one is released outside the
  // publish mutex so a slow snapshot destructor never blocks readers.
  std::shared_ptr<const ServerSnapshot> retired;
  {
    std::lock_guard<std::mutex> lock(publish_mutex_);
    retired = std::exchange(
        published_, std::shared_ptr<const ServerSnapshot>(std::move(next)));
  }
  snapshot_stale_ = false;
}

void UntrustedServer::TryMemoizeFromSnapshot(
    const std::string& relation, const RelationSnapshot* pinned,
    const Bytes& trapdoor_bytes, const swp::Trapdoor& trapdoor,
    const std::vector<uint64_t>& postings) {
  if (!runtime_options_.enable_trapdoor_index) return;
  // Best-effort only: a contended writer wins and we simply don't
  // memoize (the next scan of this trapdoor gets another chance).
  std::unique_lock<std::mutex> lock(dispatch_mutex_, std::try_to_lock);
  if (!lock.owns_lock()) return;
  auto it = relations_.find(relation);
  if (it == relations_.end()) return;
  // The scan result describes the pinned snapshot's documents; it seeds
  // the live index only while the live document state is still that
  // generation (index/attestation churn in between is fine).
  if (it->second.doc_generation != pinned->doc_generation) return;
  it->second.index.Memoize(trapdoor_bytes, trapdoor, postings);
  MarkDirtyLocked(&it->second, SnapshotDirty::kMeta);
  PublishDirtyLocked();
}

// ----------------------------------------------------- typed handlers

Status UntrustedServer::StoreRelation(const core::EncryptedRelation& relation) {
  std::lock_guard<std::mutex> lock(dispatch_mutex_);
  Status status = StoreRelationLocked(relation);
  PublishDirtyLocked();
  return status;
}

Status UntrustedServer::StoreRelationLocked(
    const core::EncryptedRelation& relation,
    const std::vector<crypto::SearchTree::Entry>* search_entries) {
  if (relations_.count(relation.name) > 0) {
    return Status::AlreadyExists("relation '" + relation.name +
                                 "' already stored");
  }
  StoredRelation stored;
  stored.check_length = relation.check_length;
  if (runtime_options_.enable_integrity && search_entries != nullptr) {
    // Validate (and adopt) the owner's search structure BEFORE any
    // document reaches the heap: a malformed section rejects the whole
    // store with nothing half-applied.
    DBPH_RETURN_IF_ERROR(
        stored.search.Assign(*search_entries, relation.documents.size()));
  }
  stored.index.set_max_trapdoors(runtime_options_.max_indexed_trapdoors);
  stored.index.set_max_append_evals(runtime_options_.max_index_append_evals);
  stored.records.reserve(relation.documents.size());
  const bool integrity = runtime_options_.enable_integrity;
  std::vector<crypto::MerkleTree::Hash> leaves;
  if (integrity) leaves.reserve(relation.documents.size());
  for (const auto& doc : relation.documents) {
    Bytes serialized;
    doc.AppendTo(&serialized);
    storage::RecordId rid = heap_.Insert(serialized);
    if (integrity) {
      stored.position_of[rid.Pack()] = stored.records.size();
      leaves.push_back(crypto::MerkleTree::LeafHash(serialized));
    }
    stored.records.push_back(rid);
    stored.word_slots += doc.words.size();
  }
  if (integrity) {
    stored.tree.Assign(std::move(leaves));
    stored.epoch = 1;
  }
  RecordStoreObservation(relation.name, relation.documents.size(),
                         relation.CiphertextBytes());
  auto [it, inserted] = relations_.emplace(relation.name, std::move(stored));
  MarkDirtyLocked(&it->second, SnapshotDirty::kFull);
  return Status::OK();
}

Status UntrustedServer::DropRelation(const std::string& name) {
  std::lock_guard<std::mutex> lock(dispatch_mutex_);
  Status status = DropRelationLocked(name);
  PublishDirtyLocked();
  return status;
}

Status UntrustedServer::DropRelationLocked(const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + name + "' not stored");
  }
  for (const auto& rid : it->second.records) {
    DBPH_RETURN_IF_ERROR(heap_.Delete(rid));
  }
  relations_.erase(it);
  snapshot_stale_ = true;  // the next publish simply omits the relation
  return Status::OK();
}

Result<size_t> UntrustedServer::RelationSize(const std::string& name) const {
  std::shared_ptr<const ServerSnapshot> snap = PinSnapshot();
  auto it = snap->relations.find(name);
  if (it == snap->relations.end()) {
    return Status::NotFound("relation '" + name + "' not stored");
  }
  return static_cast<size_t>(it->second->num_docs);
}

Result<std::vector<swp::EncryptedDocument>> UntrustedServer::Select(
    const core::EncryptedQuery& query) {
  // One query through the same plan/execute pipeline as a batch — the
  // planner decides scan vs index; logging and results are identical to
  // the historical sequential scan by the pipeline's contract.
  auto results = SelectBatch({query});
  return std::move(results[0]);
}

Status UntrustedServer::AttestRoot(const std::string& name, uint64_t epoch,
                                   const crypto::MerkleTree::Hash& root,
                                   const Bytes& signature) {
  std::lock_guard<std::mutex> lock(dispatch_mutex_);
  Status status = AttestRootLocked(name, epoch, root, signature);
  PublishDirtyLocked();
  return status;
}

Status UntrustedServer::AttestRootLocked(
    const std::string& name, uint64_t epoch,
    const crypto::MerkleTree::Hash& root, const Bytes& signature,
    const crypto::MerkleTree::Hash* search_root,
    const Bytes* search_signature) {
  if (!runtime_options_.enable_integrity) {
    return Status::FailedPrecondition("integrity disabled on this server");
  }
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + name + "' not stored");
  }
  if (signature.size() != 32) {
    return Status::InvalidArgument("attestation signature must be 32 bytes");
  }
  // Eve cannot verify the HMAC (she has no keys) but she refuses an
  // attestation of a state she does not hold: storing it would hand the
  // next verifier a signature that never matches a proof.
  if (epoch != it->second.epoch || root != it->second.tree.Root()) {
    return Status::FailedPrecondition(
        "attestation does not match the server's current (epoch, root)");
  }
  if (search_root != nullptr) {
    if (search_signature == nullptr || search_signature->size() != 32) {
      return Status::InvalidArgument(
          "search attestation signature must be 32 bytes");
    }
    if (*search_root != it->second.search.Root()) {
      return Status::FailedPrecondition(
          "attestation does not match the server's current search root");
    }
    it->second.search_signature = *search_signature;
  } else {
    // An old-style attestation blesses only the row tree; a previously
    // deposited search signature would then be over a stale state.
    it->second.search_signature.clear();
  }
  it->second.attested_epoch = epoch;
  it->second.root_signature = signature;
  MarkDirtyLocked(&it->second, SnapshotDirty::kMeta);
  if (runtime_options_.enable_metrics) ins_.attestations->Add();
  return Status::OK();
}

namespace {

/// The shared proof constructor: both the locked path (live tree) and
/// the snapshot path (frozen tree) produce proofs through this, so the
/// two are byte-identical at equal state by construction.
protocol::ResultProof BuildProofFromParts(const crypto::MerkleTree& tree,
                                          uint64_t epoch,
                                          uint64_t attested_epoch,
                                          const Bytes& root_signature,
                                          std::vector<uint64_t> positions) {
  protocol::ResultProof proof;
  proof.epoch = epoch;
  proof.leaf_count = tree.size();
  proof.root = tree.Root();
  if (attested_epoch == epoch) {
    proof.root_signature = root_signature;
  }
  proof.siblings = tree.SubsetProof(positions);
  proof.positions = std::move(positions);
  return proof;
}

/// The completeness twin of BuildProofFromParts: both access paths build
/// the CompletenessProof for a queried tag from the same frozen parts,
/// so the two are byte-identical at equal state by construction.
protocol::CompletenessProof BuildCompletenessFromParts(
    const crypto::SearchTree& search, uint64_t epoch, uint64_t attested_epoch,
    const Bytes& search_signature, const crypto::MerkleTree::Hash& tag) {
  protocol::CompletenessProof proof;
  proof.epoch = epoch;
  proof.tree_size = search.size();
  proof.search_root = search.Root();
  if (attested_epoch == epoch) proof.root_signature = search_signature;
  if (const crypto::SearchTree::Entry* entry = search.Find(tag)) {
    proof.kind = protocol::kCompletenessMember;
    proof.index = search.LowerBound(tag);
    proof.positions = entry->positions;
    proof.path = search.MembershipPath(proof.index);
  } else {
    proof.kind = protocol::kCompletenessAbsent;
    proof.neighbors = search.NonMembershipProof(tag);
  }
  return proof;
}

}  // namespace

protocol::ResultProof UntrustedServer::BuildProof(
    const StoredRelation& stored, std::vector<uint64_t> positions) const {
  return BuildProofFromParts(stored.tree, stored.epoch, stored.attested_epoch,
                             stored.root_signature, std::move(positions));
}

runtime::ThreadPool* UntrustedServer::pool() {
  // Concurrent snapshot readers race to the first scan; call_once makes
  // the lazy spawn safe without taxing the steady state.
  std::call_once(pool_once_, [this] {
    pool_ = std::make_unique<runtime::ThreadPool>(runtime_options_.num_threads);
  });
  return pool_.get();
}

size_t UntrustedServer::ShardCount() {
  if (runtime_options_.num_shards > 0) return runtime_options_.num_shards;
  return 4 * pool()->num_threads();
}

planner::ExecutionContext UntrustedServer::ContextFor(StoredRelation* stored) {
  planner::ExecutionContext ctx;
  ctx.heap = &heap_;
  ctx.records = &stored->records;
  ctx.check_length = stored->check_length;
  ctx.num_shards = ShardCount();
  ctx.index =
      runtime_options_.enable_trapdoor_index ? &stored->index : nullptr;
  ctx.word_slots = stored->word_slots;
  ctx.use_scan_kernel = runtime_options_.enable_scan_kernel;
  return ctx;
}

std::vector<Result<std::vector<swp::EncryptedDocument>>>
UntrustedServer::SelectBatch(const std::vector<core::EncryptedQuery>& queries) {
  std::shared_ptr<const ServerSnapshot> snap = PinSnapshot();
  std::vector<SnapshotSelectOutcome> outcomes =
      SnapshotSelectBatch(*snap, queries, /*scratch=*/nullptr);
  std::vector<Result<std::vector<swp::EncryptedDocument>>> results;
  results.reserve(outcomes.size());
  for (SnapshotSelectOutcome& outcome : outcomes) {
    results.push_back(std::move(outcome.docs));
  }
  return results;
}

std::vector<UntrustedServer::SelectOutcome>
UntrustedServer::SelectBatchInternal(
    const std::vector<core::EncryptedQuery>& queries) {
  // Resolve each query's relation into a planner task; unresolved
  // queries carry their error through the pipeline untouched.
  std::vector<planner::SelectTask> tasks(queries.size());
  std::vector<StoredRelation*> resolved(queries.size(), nullptr);
  bool any_resolved = false;
  for (size_t i = 0; i < queries.size(); ++i) {
    auto it = relations_.find(queries[i].relation);
    if (it == relations_.end()) {
      tasks[i].resolution =
          Status::NotFound("relation '" + queries[i].relation + "' not stored");
      continue;
    }
    tasks[i].ctx = ContextFor(&it->second);
    tasks[i].query = &queries[i];
    resolved[i] = &it->second;
    any_resolved = true;
  }

  const bool timed = runtime_options_.enable_metrics;
  planner::PlanExecutor executor(any_resolved ? pool() : nullptr);
  planner::PlanExecutor::ExecuteTiming timing;
  std::vector<planner::PlannedOutcome> outcomes =
      executor.Execute(tasks, timed ? &timing : nullptr);
  if (timed) {
    trace_.plan_micros += timing.plan_micros;
    trace_.execute_micros += timing.index_fetch_micros + timing.scan_micros;
    trace_.execute_index_micros += timing.index_fetch_micros;
    trace_.execute_scan_micros += timing.scan_micros;
    cur_.flags |= PendingRequestStat::kRanPipeline;
    cur_.plan_micros += SaturateU32(timing.plan_micros);
    if (timing.index_queries > 0) {
      trace_.used_index = true;
      cur_.flags |= PendingRequestStat::kUsedIndex;
      cur_.index_queries += SaturateU32(timing.index_queries);
      cur_.execute_index_micros += SaturateU32(timing.index_fetch_micros);
    }
    if (timing.scan_queries > 0) {
      cur_.flags |= PendingRequestStat::kUsedScan;
      cur_.scan_queries += SaturateU32(timing.scan_queries);
      cur_.execute_scan_micros += SaturateU32(timing.scan_micros);
      trace_.match_evals += timing.match_evals;
      cur_.match_evals += SaturateU32(timing.match_evals);
    }
    if (trace_.relation.empty() && !queries.empty()) {
      trace_.relation = queries.front().relation;
    }
  }
  if (runtime_options_.enable_trapdoor_index) {
    // The pipeline consulted (and possibly memoized into) each resolved
    // relation's live index, so the frozen copies readers see must be
    // refreshed when this locked request completes.
    for (StoredRelation* stored : resolved) {
      if (stored != nullptr) MarkDirtyLocked(stored, SnapshotDirty::kMeta);
    }
  }

  // Logging happens here, on the dispatch thread, in query order — the
  // log is indistinguishable from the same selects arriving one by one,
  // and (by the pipeline's contract) from a sequential scan regardless
  // of the access path each query took.
  const bool integrity = runtime_options_.enable_integrity;
  std::vector<SelectOutcome> results(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    if (!tasks[i].resolution.ok()) {
      results[i].docs = tasks[i].resolution;
      continue;
    }
    if (!outcomes[i].status.ok()) {
      results[i].docs = outcomes[i].status;
      continue;
    }
    QueryObservation observation;
    observation.relation = queries[i].relation;
    queries[i].trapdoor.AppendTo(&observation.trapdoor_bytes);
    if (integrity) {
      results[i].tag =
          crypto::SearchTree::TagDigest(observation.trapdoor_bytes);
      results[i].has_tag = true;
    }
    std::vector<swp::EncryptedDocument> docs;
    docs.reserve(outcomes[i].matches.size());
    for (runtime::ShardMatch& match : outcomes[i].matches) {
      observation.matched_records.push_back(match.rid.Pack());
      if (integrity) {
        // Matches arrive in storage order (the pipeline's contract), so
        // these leaf positions come out sorted — exactly what the proof
        // builder and the verifier's recursion expect.
        results[i].positions.push_back(
            resolved[i]->position_of.at(match.rid.Pack()));
      }
      docs.push_back(std::move(match.doc));
    }
    if (auditor_ != nullptr) {
      // The auditor consumes exactly what the observation entry records:
      // relation, trapdoor bytes (digested immediately), matched count,
      // and which access path answered.
      auditor_->RecordQuery(
          queries[i].relation, observation.trapdoor_bytes, docs.size(),
          outcomes[i].plan.path == planner::AccessPath::kIndexLookup);
    }
    RecordQueryObservation(std::move(observation));
    if (timed) trace_.result_size += docs.size();
    results[i].docs = std::move(docs);
    results[i].stored = resolved[i];
  }
  return results;
}

std::vector<UntrustedServer::SnapshotSelectOutcome>
UntrustedServer::SnapshotSelectBatch(
    const ServerSnapshot& snap, const std::vector<core::EncryptedQuery>& queries,
    ReadScratch* scratch) {
  const bool timed = scratch != nullptr && runtime_options_.enable_metrics;
  using SteadyClock = Stopwatch::Clock;

  struct QueryState {
    const RelationSnapshot* rel = nullptr;
    Bytes trapdoor_bytes;
    /// Frozen-index answer; null = scan. An empty list is a real answer.
    const std::vector<uint64_t>* postings = nullptr;
    bool will_memoize = false;
    bool failed = false;
    std::vector<SnapshotMatch> matches;
  };
  std::vector<QueryState> states(queries.size());
  std::vector<SnapshotSelectOutcome> results(queries.size());

  // ---- plan: resolve + consult the frozen index (stats-free Peek;
  // hit/miss accounting goes to the server-level reader atomics) ----
  SteadyClock::time_point plan_start{};
  if (timed) plan_start = SteadyClock::now();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto it = snap.relations.find(queries[i].relation);
    if (it == snap.relations.end()) {
      results[i].docs = Status::NotFound("relation '" + queries[i].relation +
                                         "' not stored");
      continue;
    }
    QueryState& st = states[i];
    st.rel = it->second.get();
    queries[i].trapdoor.AppendTo(&st.trapdoor_bytes);
    if (st.rel->index != nullptr) {
      st.postings = st.rel->index->Peek(st.trapdoor_bytes);
      if (st.postings != nullptr) {
        reader_index_hits_.fetch_add(1, std::memory_order_relaxed);
      } else {
        reader_index_misses_.fetch_add(1, std::memory_order_relaxed);
        st.will_memoize = !st.rel->index->AtCapacity();
      }
    }
  }

  // ---- execute: posting fetches inline, then the scan queries (each a
  // sharded wave over the pool, results in storage order) ----
  SteadyClock::time_point index_start{};
  if (timed) index_start = SteadyClock::now();
  size_t index_queries = 0;
  size_t scan_queries = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryState& st = states[i];
    if (st.rel == nullptr || st.postings == nullptr) continue;
    Status status = st.rel->FetchPostings(*st.postings, &st.matches);
    if (!status.ok()) {
      st.matches.clear();
      st.failed = true;
      results[i].docs = status;
    }
    ++index_queries;
  }
  SteadyClock::time_point scan_start{};
  if (timed) scan_start = SteadyClock::now();
  uint64_t batch_match_evals = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryState& st = states[i];
    if (st.rel == nullptr || st.postings != nullptr) continue;
    ++scan_queries;
    Status status = st.rel->Scan(queries[i].trapdoor, ShardCount(), pool(),
                                 &st.matches, &batch_match_evals);
    if (!status.ok()) {
      st.matches.clear();
      st.failed = true;
      results[i].docs = status;
      continue;
    }
    if (st.will_memoize) {
      std::vector<uint64_t> postings;
      postings.reserve(st.matches.size());
      for (const SnapshotMatch& match : st.matches) {
        postings.push_back(match.rid_packed);
      }
      TryMemoizeFromSnapshot(queries[i].relation, st.rel, st.trapdoor_bytes,
                             queries[i].trapdoor, postings);
    }
  }
  SteadyClock::time_point scan_end{};
  if (timed) scan_end = SteadyClock::now();

  if (timed) {
    const uint64_t plan_micros = MicrosBetween(plan_start, index_start);
    const uint64_t index_micros = MicrosBetween(index_start, scan_start);
    const uint64_t scan_micros = MicrosBetween(scan_start, scan_end);
    scratch->trace.plan_micros += plan_micros;
    scratch->trace.execute_micros += index_micros + scan_micros;
    scratch->trace.execute_index_micros += index_micros;
    scratch->trace.execute_scan_micros += scan_micros;
    scratch->cur.flags |= PendingRequestStat::kRanPipeline;
    scratch->cur.plan_micros += SaturateU32(plan_micros);
    if (index_queries > 0) {
      scratch->trace.used_index = true;
      scratch->cur.flags |= PendingRequestStat::kUsedIndex;
      scratch->cur.index_queries += SaturateU32(index_queries);
      scratch->cur.execute_index_micros += SaturateU32(index_micros);
    }
    if (scan_queries > 0) {
      scratch->cur.flags |= PendingRequestStat::kUsedScan;
      scratch->cur.scan_queries += SaturateU32(scan_queries);
      scratch->cur.execute_scan_micros += SaturateU32(scan_micros);
      scratch->trace.match_evals += batch_match_evals;
      scratch->cur.match_evals += SaturateU32(batch_match_evals);
    }
    if (scratch->trace.relation.empty() && !queries.empty()) {
      scratch->trace.relation = queries.front().relation;
    }
  }

  // ---- fold: observations + positions + documents, in query order ----
  std::vector<QueryObservation> observations;
  observations.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryState& st = states[i];
    if (st.rel == nullptr || st.failed) continue;
    QueryObservation observation;
    observation.relation = queries[i].relation;
    observation.trapdoor_bytes = st.trapdoor_bytes;
    if (st.rel->tree != nullptr) {
      results[i].tag = crypto::SearchTree::TagDigest(st.trapdoor_bytes);
      results[i].has_tag = true;
    }
    std::vector<swp::EncryptedDocument> docs;
    docs.reserve(st.matches.size());
    for (SnapshotMatch& match : st.matches) {
      observation.matched_records.push_back(match.rid_packed);
      if (st.rel->tree != nullptr) {
        results[i].positions.push_back(match.position);
      }
      docs.push_back(std::move(match.doc));
    }
    if (auditor_ != nullptr) {
      auditor_->RecordQuery(queries[i].relation, observation.trapdoor_bytes,
                            docs.size(),
                            /*used_index=*/st.postings != nullptr);
    }
    if (timed) scratch->trace.result_size += docs.size();
    observations.push_back(std::move(observation));
    results[i].docs = std::move(docs);
    results[i].rel = st.rel;
  }

  // ---- log: one short critical section for the whole batch, entries
  // in query order (the batch transcribes exactly like the same selects
  // arriving one by one). On the read path the lock-wait metric means
  // THIS wait — the only lock a snapshot read contends on.
  if (!observations.empty()) {
    SteadyClock::time_point lock_start{};
    if (timed) lock_start = SteadyClock::now();
    std::lock_guard<std::mutex> lock(log_mutex_);
    if (timed) {
      scratch->trace.lock_wait_micros +=
          MicrosBetween(lock_start, SteadyClock::now());
    }
    for (QueryObservation& observation : observations) {
      log_.RecordQuery(std::move(observation));
    }
  }
  return results;
}

Result<protocol::PlanReport> UntrustedServer::Explain(
    const core::EncryptedQuery& query) {
  std::shared_ptr<const ServerSnapshot> snap = PinSnapshot();
  return ExplainFromSnapshot(*snap, query);
}

Result<protocol::PlanReport> UntrustedServer::ExplainFromSnapshot(
    const ServerSnapshot& snap, const core::EncryptedQuery& query) {
  auto it = snap.relations.find(query.relation);
  if (it == snap.relations.end()) {
    return Status::NotFound("relation '" + query.relation + "' not stored");
  }
  const RelationSnapshot& rel = *it->second;
  Bytes trapdoor_bytes;
  query.trapdoor.AppendTo(&trapdoor_bytes);
  // Mirrors planner::PlanSelect + MakePlanReport against the frozen
  // state (EXPLAIN is plan-only on both paths: the stats-free Peek,
  // nothing executed, nothing logged).
  protocol::PlanReport report;
  report.relation = query.relation;
  report.num_records = static_cast<uint32_t>(rel.num_docs);
  report.num_shards = static_cast<uint32_t>(ShardCount());
  report.index_enabled = rel.index != nullptr;
  report.indexed_trapdoors = static_cast<uint32_t>(
      rel.index != nullptr ? rel.index->num_trapdoors() : 0);
  if (rel.index != nullptr) {
    if (const std::vector<uint64_t>* postings =
            rel.index->Peek(trapdoor_bytes)) {
      report.access_path = protocol::PlanAccessPath::kIndexLookup;
      report.posting_size = static_cast<uint32_t>(postings->size());
      return report;
    }
    report.will_memoize = !rel.index->AtCapacity();
  }
  // Scan path: every stored word slot is matched exactly once.
  report.match_evals = rel.word_slots;
  return report;
}

Status UntrustedServer::AppendTuples(
    const std::string& name,
    const std::vector<swp::EncryptedDocument>& documents) {
  std::lock_guard<std::mutex> lock(dispatch_mutex_);
  Status status = AppendTuplesLocked(name, documents);
  PublishDirtyLocked();
  return status;
}

Status UntrustedServer::AppendTuplesLocked(
    const std::string& name,
    const std::vector<swp::EncryptedDocument>& documents,
    const std::vector<crypto::SearchTree::Entry>* search_delta) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + name + "' not stored");
  }
  size_t bytes = 0;
  const bool integrity = runtime_options_.enable_integrity;
  if (integrity && search_delta != nullptr) {
    // All-or-nothing, BEFORE any document reaches the heap: a malformed
    // delta rejects the append with both trees untouched.
    const uint64_t begin = it->second.records.size();
    DBPH_RETURN_IF_ERROR(it->second.search.ApplyAppendDelta(
        *search_delta, begin, begin + documents.size()));
  }
  std::vector<std::pair<uint64_t, const swp::EncryptedDocument*>> added;
  added.reserve(documents.size());
  for (const auto& doc : documents) {
    Bytes serialized;
    doc.AppendTo(&serialized);
    bytes += serialized.size();
    storage::RecordId rid = heap_.Insert(serialized);
    if (integrity) {
      it->second.position_of[rid.Pack()] = it->second.records.size();
      it->second.tree.AppendLeaf(crypto::MerkleTree::LeafHash(serialized));
    }
    it->second.records.push_back(rid);
    it->second.word_slots += doc.words.size();
    added.emplace_back(rid.Pack(), &doc);
    // The same bytes the heap holds, staged so the publish is
    // O(appended): old chunks shared, these become one new chunk.
    it->second.pending_append.push_back({rid.Pack(), std::move(serialized)});
  }
  // Every append (even an empty one) is an epoch: the client mirrors the
  // same rule, so epochs agree without a negotiation round trip.
  if (integrity) ++it->second.epoch;
  if (runtime_options_.enable_trapdoor_index) {
    // Keep memoized posting lists exact: evaluate every cached trapdoor
    // against just the new documents (what an Eve replaying her log
    // would do) so a later index-path select equals a fresh full scan.
    it->second.index.OnAppend(it->second.check_length, added);
  }
  RecordStoreObservation(name, documents.size(), bytes);
  MarkDirtyLocked(&it->second, SnapshotDirty::kAppend);
  return Status::OK();
}

Result<size_t> UntrustedServer::DeleteWhere(
    const core::EncryptedQuery& query) {
  std::lock_guard<std::mutex> lock(dispatch_mutex_);
  auto removed = DeleteWhereInternal(query, /*removed_out=*/nullptr);
  PublishDirtyLocked();
  return removed;
}

Result<size_t> UntrustedServer::DeleteWhereInternal(
    const core::EncryptedQuery& query,
    std::vector<std::pair<uint64_t, Bytes>>* removed_out) {
  auto it = relations_.find(query.relation);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + query.relation + "' not stored");
  }
  const bool integrity = runtime_options_.enable_integrity;
  swp::SwpParams params;
  params.word_length = query.trapdoor.target.size();
  params.check_length = it->second.check_length;

  QueryObservation observation;
  observation.relation = query.relation;
  query.trapdoor.AppendTo(&observation.trapdoor_bytes);

  // One precomputed schedule for the whole delete scan. A delete only
  // observes membership (never which slot matched), so the kernel path
  // may short-circuit a document at its first matching word — the kept
  // set, observation entry, and manifest are identical to the scalar
  // sweep.
  const bool use_kernel = runtime_options_.enable_scan_kernel;
  swp::MatchContext context(params, query.trapdoor);
  std::vector<storage::RecordId> kept;
  std::vector<uint64_t> removed_positions;
  size_t position = 0;
  size_t removed = 0;
  for (const auto& rid : it->second.records) {
    DBPH_ASSIGN_OR_RETURN(swp::EncryptedDocument doc,
                          runtime::ReadStoredDocument(heap_, rid));
    bool matched;
    if (use_kernel) {
      matched = false;
      for (const Bytes& word : doc.words) {
        if (context.Matches(word)) {
          matched = true;
          break;
        }
      }
    } else {
      matched = !swp::SearchDocument(params, query.trapdoor, doc).empty();
    }
    if (!matched) {
      kept.push_back(rid);
    } else {
      observation.matched_records.push_back(rid.Pack());
      if (integrity) {
        // Pre-delete leaf positions, in storage order: the manifest the
        // client checks against its own tree before mirroring the
        // removal.
        removed_positions.push_back(position);
        if (removed_out != nullptr) {
          Bytes serialized;
          doc.AppendTo(&serialized);
          removed_out->emplace_back(position, std::move(serialized));
        }
      }
      DBPH_RETURN_IF_ERROR(heap_.Delete(rid));
      it->second.word_slots -= doc.words.size();
      ++removed;
    }
    ++position;
  }
  it->second.records = std::move(kept);
  if (runtime_options_.enable_metrics) {
    trace_.relation = query.relation;
    trace_.result_size += removed;
    trace_.match_evals += context.match_evals();
    cur_.match_evals += SaturateU32(context.match_evals());
  }
  if (integrity) {
    it->second.tree.RemoveSorted(removed_positions);
    // Both sides apply the identical transform from the (verified)
    // manifest positions, so the search roots stay in lockstep.
    it->second.search.ApplyDelete(removed_positions);
    ++it->second.epoch;
    if (removed > 0) {
      // Surviving leaves shifted left; rebuild the rid → position map.
      it->second.position_of.clear();
      for (size_t i = 0; i < it->second.records.size(); ++i) {
        it->second.position_of[it->second.records[i].Pack()] = i;
      }
    }
  }
  if (runtime_options_.enable_trapdoor_index) {
    // Deleted records leave every posting list (an already-memoized
    // copy of this delete's trapdoor thereby becomes empty — exactly
    // what a rescan would find). The delete's trapdoor is deliberately
    // NOT memoized fresh: delete traffic would otherwise fill the
    // capped memo with entries only selects repay.
    it->second.index.OnDelete(observation.matched_records);
  }
  if (auditor_ != nullptr) {
    // Deletes leak exactly like selects (matched identities via a full
    // scan), so they feed the same per-relation spectrum.
    auditor_->RecordQuery(query.relation, observation.trapdoor_bytes, removed,
                          /*used_index=*/false);
  }
  RecordQueryObservation(std::move(observation));
  // A match-less delete still moved the epoch (and possibly index
  // stats); with matches the document set itself changed.
  MarkDirtyLocked(&it->second,
                  removed > 0 ? SnapshotDirty::kFull : SnapshotDirty::kMeta);
  return removed;
}

Result<std::vector<swp::EncryptedDocument>> UntrustedServer::FetchRelation(
    const std::string& name) const {
  std::shared_ptr<const ServerSnapshot> snap = PinSnapshot();
  auto it = snap->relations.find(name);
  if (it == snap->relations.end()) {
    return Status::NotFound("relation '" + name + "' not stored");
  }
  const RelationSnapshot& rel = *it->second;
  std::vector<swp::EncryptedDocument> documents;
  documents.reserve(rel.num_docs);
  for (uint64_t pos = 0; pos < rel.num_docs; ++pos) {
    DBPH_ASSIGN_OR_RETURN(swp::EncryptedDocument doc, rel.ParseDoc(pos));
    documents.push_back(std::move(doc));
  }
  return documents;
}

Result<std::vector<swp::EncryptedDocument>>
UntrustedServer::FetchRelationLocked(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + name + "' not stored");
  }
  std::vector<swp::EncryptedDocument> documents;
  documents.reserve(it->second.records.size());
  for (const auto& rid : it->second.records) {
    DBPH_ASSIGN_OR_RETURN(swp::EncryptedDocument doc,
                          runtime::ReadStoredDocument(heap_, rid));
    documents.push_back(std::move(doc));
  }
  return documents;
}

Result<Bytes> UntrustedServer::SerializeState() const {
  Bytes out;
  AppendUint32(&out, 0x44425048);  // "DBPH" magic
  AppendUint32(&out, 3);           // format version
  AppendUint32(&out, static_cast<uint32_t>(relations_.size()));
  for (const auto& [name, stored] : relations_) {
    core::EncryptedRelation relation;
    relation.name = name;
    relation.check_length = stored.check_length;
    DBPH_ASSIGN_OR_RETURN(relation.documents, FetchRelationLocked(name));
    relation.AppendTo(&out);
    // v2: integrity state rides along. The tree itself is NOT persisted
    // — it is a deterministic function of the ciphertext and rebuilds on
    // restore — but the epoch and the owner's signed root cannot be
    // recomputed from what Eve holds, so they round-trip explicitly.
    AppendUint64(&out, stored.epoch);
    AppendUint64(&out, stored.attested_epoch);
    AppendLengthPrefixed(&out, stored.root_signature);
    // v3: the search structure and its signature. Unlike the row tree,
    // the search entries are NOT derivable from the ciphertext Eve
    // holds (only the owner can enumerate tags), so they round-trip
    // explicitly.
    protocol::AppendSearchEntries(stored.search.entries(), &out);
    AppendLengthPrefixed(&out, stored.search_signature);
  }
  return out;
}

Status UntrustedServer::SaveTo(const std::string& path) const {
  // Quiesce mutations for the read (SerializeState is caller-locked).
  std::lock_guard<std::mutex> lock(dispatch_mutex_);
  DBPH_ASSIGN_OR_RETURN(Bytes out, SerializeState());
  // Atomic: a crash mid-save leaves the previous snapshot intact.
  return storage::AtomicWriteFile(path, out);
}

Status UntrustedServer::LoadFrom(const std::string& path) {
  DBPH_ASSIGN_OR_RETURN(Bytes data, storage::ReadWholeFile(path));
  return RestoreState(data);
}

Status UntrustedServer::RestoreState(const Bytes& data) {
  std::lock_guard<std::mutex> lock(dispatch_mutex_);
  Status status = RestoreStateLocked(data);
  PublishDirtyLocked();
  return status;
}

Status UntrustedServer::RestoreStateLocked(const Bytes& data) {
  ByteReader reader(data);
  DBPH_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadUint32());
  if (magic != 0x44425048) return Status::DataLoss("bad magic");
  DBPH_ASSIGN_OR_RETURN(uint32_t version, reader.ReadUint32());
  if (version != 1 && version != 2 && version != 3) {
    return Status::DataLoss("unsupported format version");
  }
  DBPH_ASSIGN_OR_RETURN(uint32_t count, reader.ReadUint32());

  // Parse fully before mutating state so a corrupt file cannot leave the
  // server half-loaded.
  struct LoadedRelation {
    core::EncryptedRelation relation;
    uint64_t epoch = 0;
    uint64_t attested_epoch = 0;
    Bytes root_signature;
    std::vector<crypto::SearchTree::Entry> search_entries;
    Bytes search_signature;
  };
  std::vector<LoadedRelation> loaded;
  loaded.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    LoadedRelation entry;
    DBPH_ASSIGN_OR_RETURN(entry.relation,
                          core::EncryptedRelation::ReadFrom(&reader));
    if (version >= 2) {
      DBPH_ASSIGN_OR_RETURN(entry.epoch, reader.ReadUint64());
      DBPH_ASSIGN_OR_RETURN(entry.attested_epoch, reader.ReadUint64());
      DBPH_ASSIGN_OR_RETURN(entry.root_signature,
                            reader.ReadLengthPrefixed());
      if (!entry.root_signature.empty() &&
          entry.root_signature.size() != 32) {
        return Status::DataLoss("bad root signature length");
      }
    }
    if (version >= 3) {
      DBPH_ASSIGN_OR_RETURN(
          entry.search_entries,
          protocol::ReadSearchEntries(&reader,
                                      entry.relation.documents.size()));
      DBPH_ASSIGN_OR_RETURN(entry.search_signature,
                            reader.ReadLengthPrefixed());
      if (!entry.search_signature.empty() &&
          entry.search_signature.size() != 32) {
        return Status::DataLoss("bad search signature length");
      }
    }
    // v1/v2 images carry no search section: the relation loads with an
    // empty (vacuously consistent) search tree; WAL replay of later
    // store/append envelopes restores whatever deltas followed the image.
    loaded.push_back(std::move(entry));
  }
  if (!reader.AtEnd()) return Status::DataLoss("trailing bytes");

  relations_.clear();
  heap_ = storage::HeapFile();
  snapshot_stale_ = true;
  {
    std::lock_guard<std::mutex> lock(log_mutex_);
    log_.Clear();
  }
  for (const auto& entry : loaded) {
    DBPH_RETURN_IF_ERROR(StoreRelationLocked(
        entry.relation,
        entry.search_entries.empty() ? nullptr : &entry.search_entries));
    if (runtime_options_.enable_integrity && entry.epoch != 0) {
      // The tree was rebuilt from ciphertext by StoreRelationLocked (its
      // root is deterministic); the mutation counter and the owner's
      // signed root come from the image.
      StoredRelation& stored = relations_.at(entry.relation.name);
      stored.epoch = entry.epoch;
      stored.attested_epoch = entry.attested_epoch;
      stored.root_signature = entry.root_signature;
      stored.search_signature = entry.search_signature;
    }
  }
  {
    std::lock_guard<std::mutex> lock(log_mutex_);
    log_.Clear();  // the re-stores above are not real observations
  }
  return Status::OK();
}

namespace {

/// kSelectResult payload: count | documents | [ResultProof
/// [CompletenessProof]]. The proofs are optional trailing data —
/// pre-integrity clients stop after the documents; verifying clients
/// parse them from the remainder (the completeness proof rides only
/// after a row proof, never alone).
protocol::Envelope MakeSelectResultEnvelope(
    const std::vector<swp::EncryptedDocument>& docs,
    const protocol::ResultProof* proof,
    const protocol::CompletenessProof* completeness) {
  protocol::Envelope response;
  response.type = protocol::MessageType::kSelectResult;
  AppendUint32(&response.payload, static_cast<uint32_t>(docs.size()));
  for (const auto& doc : docs) doc.AppendTo(&response.payload);
  if (proof != nullptr) proof->AppendTo(&response.payload);
  if (proof != nullptr && completeness != nullptr) {
    completeness->AppendTo(&response.payload);
  }
  return response;
}

}  // namespace

protocol::Envelope UntrustedServer::MakeSelectResponse(
    SelectOutcome* outcome) {
  if (!outcome->docs.ok()) {
    return protocol::MakeErrorEnvelope(outcome->docs.status());
  }
  if (runtime_options_.enable_integrity && outcome->stored != nullptr) {
    const bool timed = runtime_options_.enable_metrics;
    Stopwatch::Clock::time_point start{};
    if (timed) start = Stopwatch::Clock::now();
    protocol::ResultProof proof =
        BuildProof(*outcome->stored, std::move(outcome->positions));
    protocol::CompletenessProof completeness;
    if (outcome->has_tag) {
      completeness = BuildCompletenessFromParts(
          outcome->stored->search, outcome->stored->epoch,
          outcome->stored->attested_epoch, outcome->stored->search_signature,
          outcome->tag);
    }
    if (timed) {
      uint64_t micros = MicrosBetween(start, Stopwatch::Clock::now());
      trace_.proof_micros += micros;
      cur_.flags |= PendingRequestStat::kBuiltProof;
      cur_.proof_micros += SaturateU32(micros);
    }
    return MakeSelectResultEnvelope(*outcome->docs, &proof,
                                    outcome->has_tag ? &completeness : nullptr);
  }
  return MakeSelectResultEnvelope(*outcome->docs, nullptr, nullptr);
}

protocol::Envelope UntrustedServer::MakeSnapshotSelectResponse(
    SnapshotSelectOutcome* outcome, ReadScratch* scratch) {
  if (!outcome->docs.ok()) {
    return protocol::MakeErrorEnvelope(outcome->docs.status());
  }
  if (outcome->rel != nullptr && outcome->rel->tree != nullptr) {
    // The proof source is the pinned snapshot's frozen tree/epoch — the
    // exact state the documents came from, so a racing mutation can
    // never splice a stale root under this proof.
    const bool timed = scratch != nullptr && runtime_options_.enable_metrics;
    Stopwatch::Clock::time_point start{};
    if (timed) start = Stopwatch::Clock::now();
    protocol::ResultProof proof = BuildProofFromParts(
        *outcome->rel->tree, outcome->rel->epoch, outcome->rel->attested_epoch,
        outcome->rel->root_signature, std::move(outcome->positions));
    protocol::CompletenessProof completeness;
    const bool has_completeness =
        outcome->has_tag && outcome->rel->search != nullptr;
    if (has_completeness) {
      completeness = BuildCompletenessFromParts(
          *outcome->rel->search, outcome->rel->epoch,
          outcome->rel->attested_epoch, outcome->rel->search_signature,
          outcome->tag);
    }
    if (timed) {
      uint64_t micros = MicrosBetween(start, Stopwatch::Clock::now());
      scratch->trace.proof_micros += micros;
      scratch->cur.flags |= PendingRequestStat::kBuiltProof;
      scratch->cur.proof_micros += SaturateU32(micros);
    }
    return MakeSelectResultEnvelope(*outcome->docs, &proof,
                                    has_completeness ? &completeness : nullptr);
  }
  return MakeSelectResultEnvelope(*outcome->docs, nullptr, nullptr);
}

protocol::Envelope UntrustedServer::DispatchBatch(
    const protocol::Envelope& request) {
  using protocol::Envelope;
  using protocol::MessageType;
  auto parts = protocol::ParseBatchPayload(request.payload);
  if (!parts.ok()) return protocol::MakeErrorEnvelope(parts.status());

  // Sub-requests execute in order. Maximal runs of consecutive selects
  // become one parallel wave; any mutating operation in between acts as
  // a barrier, so a select always sees every earlier write in its batch.
  // (All-select batches never reach here — they take the snapshot read
  // path; this locked path serves exactly the mixed batches.)
  std::vector<Envelope> responses(parts->size());
  size_t i = 0;
  while (i < parts->size()) {
    if ((*parts)[i].type != MessageType::kSelect) {
      responses[i] = Dispatch((*parts)[i]);
      ++i;
      continue;
    }
    std::vector<core::EncryptedQuery> wave;
    std::vector<size_t> wave_slots;
    while (i < parts->size() && (*parts)[i].type == MessageType::kSelect) {
      ByteReader reader((*parts)[i].payload);
      auto query = core::EncryptedQuery::ReadFrom(&reader);
      if (!query.ok()) {
        responses[i] = protocol::MakeErrorEnvelope(query.status());
      } else {
        wave.push_back(std::move(*query));
        wave_slots.push_back(i);
      }
      ++i;
    }
    auto results = SelectBatchInternal(wave);
    for (size_t k = 0; k < wave_slots.size(); ++k) {
      responses[wave_slots[k]] = MakeSelectResponse(&results[k]);
    }
  }

  Envelope response;
  response.type = MessageType::kBatchResponse;
  response.payload = protocol::SerializeBatchPayload(responses);
  return response;
}

Status UntrustedServer::LogMutation(const protocol::Envelope& request) {
  if (!mutation_hook_) return Status::OK();
  Status logged = mutation_hook_(request);
  if (!logged.ok()) {
    return Status::Unavailable("durability: " + logged.message());
  }
  return Status::OK();
}

protocol::Envelope UntrustedServer::Dispatch(
    const protocol::Envelope& request) {
  using protocol::Envelope;
  using protocol::MessageType;
  switch (request.type) {
    case MessageType::kStoreRelation: {
      ByteReader reader(request.payload);
      auto relation = core::EncryptedRelation::ReadFrom(&reader);
      if (!relation.ok()) return protocol::MakeErrorEnvelope(relation.status());
      // Optional trailing search-entry section (integrity-tracking
      // clients): the owner's (tag → positions) commitment for the
      // stored rows. Non-integrity servers keep ignoring trailing bytes.
      std::vector<crypto::SearchTree::Entry> search_entries;
      bool has_search = false;
      if (runtime_options_.enable_integrity && !reader.AtEnd()) {
        auto entries =
            protocol::ReadSearchEntries(&reader, relation->documents.size());
        if (!entries.ok()) {
          return protocol::MakeErrorEnvelope(entries.status());
        }
        search_entries = std::move(*entries);
        has_search = true;
      }
      if (Status wal = LogMutation(request); !wal.ok()) {
        return protocol::MakeErrorEnvelope(wal);
      }
      Status status = StoreRelationLocked(
          *relation, has_search ? &search_entries : nullptr);
      if (!status.ok()) return protocol::MakeErrorEnvelope(status);
      Envelope ok;
      ok.type = MessageType::kStoreOk;
      return ok;
    }
    case MessageType::kSelect: {
      ByteReader reader(request.payload);
      auto query = core::EncryptedQuery::ReadFrom(&reader);
      if (!query.ok()) return protocol::MakeErrorEnvelope(query.status());
      auto outcomes = SelectBatchInternal({*query});
      return MakeSelectResponse(&outcomes[0]);
    }
    case MessageType::kExplain: {
      // Plan-only: parses like kSelect, executes nothing, logs nothing
      // (no matches are computed, so there is no query observation — the
      // report is a function of state Eve already holds). Served from
      // LIVE state, not the published snapshot: a mixed batch may have
      // mutated this relation earlier in the same batch, and its EXPLAIN
      // legs must see those writes (the snapshot refreshes only when the
      // whole locked request completes).
      ByteReader reader(request.payload);
      auto query = core::EncryptedQuery::ReadFrom(&reader);
      if (!query.ok()) return protocol::MakeErrorEnvelope(query.status());
      auto it = relations_.find(query->relation);
      if (it == relations_.end()) {
        return protocol::MakeErrorEnvelope(Status::NotFound(
            "relation '" + query->relation + "' not stored"));
      }
      planner::ExecutionContext ctx = ContextFor(&it->second);
      Bytes trapdoor_bytes;
      query->trapdoor.AppendTo(&trapdoor_bytes);
      planner::QueryPlan plan = planner::PlanSelect(
          ctx, trapdoor_bytes, /*postings_out=*/nullptr,
          /*record_stats=*/false);
      Envelope response;
      response.type = MessageType::kExplainResult;
      planner::MakePlanReport(ctx, plan, query->relation)
          .AppendTo(&response.payload);
      return response;
    }
    case MessageType::kBatchRequest:
      return DispatchBatch(request);
    case MessageType::kStats: {
      // Keys-free live stats: everything in the snapshot is derived from
      // Eve's own observations (op counts, timings, sizes) — safe to
      // serve to anyone who can already reach the wire. Carries no
      // request payload by definition.
      if (!request.payload.empty()) {
        return protocol::MakeErrorEnvelope(
            Status::InvalidArgument("kStats carries no payload"));
      }
      RefreshGaugesLocked();
      Envelope response;
      response.type = MessageType::kStatsResult;
      metrics_.Snapshot().AppendTo(&response.payload);
      return response;
    }
    case MessageType::kLeakageReport: {
      // The adversary's view of itself: salted tag digests, counts, and
      // derived rates only — never raw trapdoor or ciphertext bytes
      // (the auditor's redaction contract). Carries no request payload.
      if (!request.payload.empty()) {
        return protocol::MakeErrorEnvelope(
            Status::InvalidArgument("kLeakageReport carries no payload"));
      }
      if (auditor_ == nullptr) {
        return protocol::MakeErrorEnvelope(Status::FailedPrecondition(
            "leakage auditor disabled (--leakage=off)"));
      }
      Envelope response;
      response.type = MessageType::kLeakageReportResult;
      auditor_->Report().AppendTo(&response.payload);
      return response;
    }
    case MessageType::kPing: {
      // Keys-free health check: echo the client's cookie. Pings carry no
      // trapdoors and match nothing, so they are not query observations.
      Envelope pong;
      pong.type = MessageType::kPong;
      pong.payload = request.payload;
      return pong;
    }
    case MessageType::kFlush: {
      // Durability point: every mutation acknowledged before this reply
      // is on stable storage. Carries no payload by definition.
      if (!request.payload.empty()) {
        return protocol::MakeErrorEnvelope(
            Status::InvalidArgument("kFlush carries no payload"));
      }
      if (flush_hook_) {
        if (Status flushed = flush_hook_(); !flushed.ok()) {
          return protocol::MakeErrorEnvelope(
              Status::Unavailable("durability: " + flushed.message()));
        }
      }
      Envelope ok;
      ok.type = MessageType::kFlushOk;
      return ok;
    }
    case MessageType::kDropRelation: {
      if (Status wal = LogMutation(request); !wal.ok()) {
        return protocol::MakeErrorEnvelope(wal);
      }
      Status status = DropRelationLocked(ToString(request.payload));
      if (!status.ok()) return protocol::MakeErrorEnvelope(status);
      Envelope ok;
      ok.type = MessageType::kDropOk;
      return ok;
    }
    case MessageType::kAppendTuples: {
      ByteReader reader(request.payload);
      auto name = reader.ReadLengthPrefixed();
      if (!name.ok()) return protocol::MakeErrorEnvelope(name.status());
      auto documents = swp::ReadDocumentList(&reader);
      if (!documents.ok()) {
        return protocol::MakeErrorEnvelope(documents.status());
      }
      // Optional trailing delta section: the appended rows' (tag →
      // positions) contributions. The position range is validated by
      // ApplyAppendDelta against the live leaf count, so the parse-time
      // limit is only the wire-format one.
      std::vector<crypto::SearchTree::Entry> search_delta;
      bool has_delta = false;
      if (runtime_options_.enable_integrity && !reader.AtEnd()) {
        auto delta = protocol::ReadSearchEntries(&reader, ~0ull);
        if (!delta.ok()) return protocol::MakeErrorEnvelope(delta.status());
        search_delta = std::move(*delta);
        has_delta = true;
      }
      if (Status wal = LogMutation(request); !wal.ok()) {
        return protocol::MakeErrorEnvelope(wal);
      }
      Status status = AppendTuplesLocked(ToString(*name), *documents,
                                         has_delta ? &search_delta : nullptr);
      if (!status.ok()) return protocol::MakeErrorEnvelope(status);
      Envelope ok;
      ok.type = MessageType::kAppendOk;
      return ok;
    }
    case MessageType::kDeleteWhere: {
      ByteReader reader(request.payload);
      auto query = core::EncryptedQuery::ReadFrom(&reader);
      if (!query.ok()) return protocol::MakeErrorEnvelope(query.status());
      if (Status wal = LogMutation(request); !wal.ok()) {
        return protocol::MakeErrorEnvelope(wal);
      }
      const bool integrity = runtime_options_.enable_integrity;
      std::vector<std::pair<uint64_t, Bytes>> manifest;
      auto removed =
          DeleteWhereInternal(*query, integrity ? &manifest : nullptr);
      if (!removed.ok()) return protocol::MakeErrorEnvelope(removed.status());
      Envelope response;
      response.type = MessageType::kDeleteResult;
      AppendUint32(&response.payload, static_cast<uint32_t>(*removed));
      if (integrity) {
        // Delete manifest: the pre-delete (leaf position, document)
        // pairs, so the owner can check each removed row against its own
        // tree — hash AND trapdoor match — before mirroring the removal.
        AppendUint32(&response.payload,
                     static_cast<uint32_t>(manifest.size()));
        for (const auto& [position, doc_bytes] : manifest) {
          AppendUint64(&response.payload, position);
          AppendLengthPrefixed(&response.payload, doc_bytes);
        }
      }
      return response;
    }
    case MessageType::kFetchRelation: {
      // Locked (mixed-batch) fetch: live heap + live tree, so a fetch
      // after an append in the same batch returns the appended rows.
      auto docs = FetchRelationLocked(ToString(request.payload));
      if (!docs.ok()) return protocol::MakeErrorEnvelope(docs.status());
      Envelope response;
      response.type = MessageType::kFetchResult;
      AppendUint32(&response.payload, static_cast<uint32_t>(docs->size()));
      for (const auto& doc : *docs) doc.AppendTo(&response.payload);
      if (runtime_options_.enable_integrity) {
        // Whole-relation completeness proof: positions [0, n) — the
        // client verifies it received every leaf, in order.
        auto it = relations_.find(ToString(request.payload));
        if (it != relations_.end()) {
          std::vector<uint64_t> all(it->second.records.size());
          for (size_t i = 0; i < all.size(); ++i) all[i] = i;
          protocol::ResultProof proof =
              BuildProof(it->second, std::move(all));
          proof.AppendTo(&response.payload);
          // Search-structure dump: the bootstrap source SyncIntegrity
          // rebuilds its mirror from, with the owner's signature when
          // the current epoch is attested.
          protocol::AppendSearchEntries(it->second.search.entries(),
                                        &response.payload);
          AppendLengthPrefixed(&response.payload,
                               it->second.attested_epoch == it->second.epoch
                                   ? it->second.search_signature
                                   : Bytes{});
        }
      }
      return response;
    }
    case MessageType::kAttestRoot: {
      ByteReader reader(request.payload);
      auto name = reader.ReadLengthPrefixed();
      if (!name.ok()) return protocol::MakeErrorEnvelope(name.status());
      auto epoch = reader.ReadUint64();
      if (!epoch.ok()) return protocol::MakeErrorEnvelope(epoch.status());
      auto root_bytes = reader.ReadRaw(32);
      if (!root_bytes.ok()) {
        return protocol::MakeErrorEnvelope(root_bytes.status());
      }
      auto root = crypto::MerkleTree::FromBytes(*root_bytes);
      if (!root.ok()) return protocol::MakeErrorEnvelope(root.status());
      auto signature = reader.ReadRaw(32);
      if (!signature.ok()) {
        return protocol::MakeErrorEnvelope(signature.status());
      }
      // Optional search-tree extension: (search_root 32B | search_sig
      // 32B). Old-style attestations stop after the row signature.
      crypto::MerkleTree::Hash search_root{};
      Bytes search_sig;
      bool has_search = false;
      if (!reader.AtEnd()) {
        auto sr_bytes = reader.ReadRaw(32);
        if (!sr_bytes.ok()) {
          return protocol::MakeErrorEnvelope(sr_bytes.status());
        }
        auto sr = crypto::MerkleTree::FromBytes(*sr_bytes);
        if (!sr.ok()) return protocol::MakeErrorEnvelope(sr.status());
        auto ss = reader.ReadRaw(32);
        if (!ss.ok()) return protocol::MakeErrorEnvelope(ss.status());
        search_root = *sr;
        search_sig = *ss;
        has_search = true;
      }
      if (!reader.AtEnd()) {
        return protocol::MakeErrorEnvelope(
            Status::DataLoss("trailing bytes after attestation"));
      }
      // Attested roots must survive restarts like the ciphertext they
      // bless: WAL-logged before applying, replayed on recovery.
      if (Status wal = LogMutation(request); !wal.ok()) {
        return protocol::MakeErrorEnvelope(wal);
      }
      Status status = AttestRootLocked(
          ToString(*name), *epoch, *root, *signature,
          has_search ? &search_root : nullptr,
          has_search ? &search_sig : nullptr);
      if (!status.ok()) return protocol::MakeErrorEnvelope(status);
      Envelope ok;
      ok.type = MessageType::kAttestOk;
      return ok;
    }
    default:
      return protocol::MakeErrorEnvelope(
          Status::InvalidArgument("unexpected message type"));
  }
}

// -------------------------------------------- snapshot read dispatch

protocol::Envelope UntrustedServer::DispatchRead(
    const protocol::Envelope& request, const ServerSnapshot& snap,
    ReadScratch* scratch) {
  using protocol::Envelope;
  using protocol::MessageType;
  switch (request.type) {
    case MessageType::kSelect: {
      ByteReader reader(request.payload);
      auto query = core::EncryptedQuery::ReadFrom(&reader);
      if (!query.ok()) return protocol::MakeErrorEnvelope(query.status());
      auto outcomes = SnapshotSelectBatch(snap, {*query}, scratch);
      return MakeSnapshotSelectResponse(&outcomes[0], scratch);
    }
    case MessageType::kBatchRequest: {
      // Routing guarantees every part is a kSelect (mixed batches take
      // the locked path); the whole batch becomes one snapshot wave.
      auto parts = protocol::ParseBatchPayload(request.payload);
      if (!parts.ok()) return protocol::MakeErrorEnvelope(parts.status());
      std::vector<Envelope> responses(parts->size());
      std::vector<core::EncryptedQuery> wave;
      std::vector<size_t> wave_slots;
      wave.reserve(parts->size());
      wave_slots.reserve(parts->size());
      for (size_t i = 0; i < parts->size(); ++i) {
        ByteReader reader((*parts)[i].payload);
        auto query = core::EncryptedQuery::ReadFrom(&reader);
        if (!query.ok()) {
          responses[i] = protocol::MakeErrorEnvelope(query.status());
          continue;
        }
        wave.push_back(std::move(*query));
        wave_slots.push_back(i);
      }
      auto results = SnapshotSelectBatch(snap, wave, scratch);
      for (size_t k = 0; k < wave_slots.size(); ++k) {
        responses[wave_slots[k]] =
            MakeSnapshotSelectResponse(&results[k], scratch);
      }
      Envelope response;
      response.type = MessageType::kBatchResponse;
      response.payload = protocol::SerializeBatchPayload(responses);
      return response;
    }
    case MessageType::kExplain: {
      ByteReader reader(request.payload);
      auto query = core::EncryptedQuery::ReadFrom(&reader);
      if (!query.ok()) return protocol::MakeErrorEnvelope(query.status());
      auto report = ExplainFromSnapshot(snap, *query);
      if (!report.ok()) return protocol::MakeErrorEnvelope(report.status());
      Envelope response;
      response.type = MessageType::kExplainResult;
      report->AppendTo(&response.payload);
      return response;
    }
    case MessageType::kFetchRelation: {
      const std::string name = ToString(request.payload);
      auto it = snap.relations.find(name);
      if (it == snap.relations.end()) {
        return protocol::MakeErrorEnvelope(
            Status::NotFound("relation '" + name + "' not stored"));
      }
      const RelationSnapshot& rel = *it->second;
      Envelope response;
      response.type = MessageType::kFetchResult;
      AppendUint32(&response.payload, static_cast<uint32_t>(rel.num_docs));
      for (uint64_t pos = 0; pos < rel.num_docs; ++pos) {
        // The frozen bytes ARE the serialized form — appending them is
        // byte-identical to re-serializing a parsed document.
        const Bytes& doc_bytes = rel.doc(pos).bytes;
        response.payload.insert(response.payload.end(), doc_bytes.begin(),
                                doc_bytes.end());
      }
      if (rel.tree != nullptr) {
        std::vector<uint64_t> all(rel.num_docs);
        for (size_t i = 0; i < all.size(); ++i) all[i] = i;
        protocol::ResultProof proof =
            BuildProofFromParts(*rel.tree, rel.epoch, rel.attested_epoch,
                                rel.root_signature, std::move(all));
        proof.AppendTo(&response.payload);
        if (rel.search != nullptr) {
          protocol::AppendSearchEntries(rel.search->entries(),
                                        &response.payload);
          AppendLengthPrefixed(&response.payload,
                               rel.attested_epoch == rel.epoch
                                   ? rel.search_signature
                                   : Bytes{});
        }
      }
      return response;
    }
    case MessageType::kStats: {
      if (!request.payload.empty()) {
        return protocol::MakeErrorEnvelope(
            Status::InvalidArgument("kStats carries no payload"));
      }
      RefreshGaugesFromSnapshot(snap);
      Envelope response;
      response.type = MessageType::kStatsResult;
      metrics_.Snapshot().AppendTo(&response.payload);
      return response;
    }
    case MessageType::kLeakageReport: {
      if (!request.payload.empty()) {
        return protocol::MakeErrorEnvelope(
            Status::InvalidArgument("kLeakageReport carries no payload"));
      }
      if (auditor_ == nullptr) {
        return protocol::MakeErrorEnvelope(Status::FailedPrecondition(
            "leakage auditor disabled (--leakage=off)"));
      }
      Envelope response;
      response.type = MessageType::kLeakageReportResult;
      auditor_->Report().AppendTo(&response.payload);
      return response;
    }
    case MessageType::kPing: {
      Envelope pong;
      pong.type = MessageType::kPong;
      pong.payload = request.payload;
      return pong;
    }
    default:
      // Unreachable via IsSnapshotRead routing; fail like Dispatch would.
      return protocol::MakeErrorEnvelope(
          Status::InvalidArgument("unexpected message type"));
  }
}

namespace {

bool IsAllSelectBatch(const protocol::Envelope& envelope) {
  auto parts = protocol::ParseBatchPayload(envelope.payload);
  if (!parts.ok()) return false;  // the locked path reproduces the error
  for (const auto& part : *parts) {
    if (part.type != protocol::MessageType::kSelect) return false;
  }
  return true;
}

/// Read-shaped requests execute against the published snapshot without
/// the dispatch lock. Everything else — including batches with even one
/// mutating part — serializes on the single-writer locked path.
bool IsSnapshotRead(const protocol::Envelope& envelope) {
  using protocol::MessageType;
  switch (envelope.type) {
    case MessageType::kSelect:
    case MessageType::kExplain:
    case MessageType::kFetchRelation:
    case MessageType::kStats:
    case MessageType::kLeakageReport:
    case MessageType::kPing:
      return true;
    case MessageType::kBatchRequest:
      return IsAllSelectBatch(envelope);
    default:
      return false;
  }
}

}  // namespace

Bytes UntrustedServer::HandleReadRequest(const protocol::Envelope& envelope,
                                         uint64_t parse_micros) {
  const bool timed = runtime_options_.enable_metrics;
  std::shared_ptr<const ServerSnapshot> snap = PinSnapshot();
  if (!timed) return DispatchRead(envelope, *snap, nullptr).Serialize();

  using SteadyClock = Stopwatch::Clock;
  ReadScratch scratch;
  scratch.trace.op = OpSlug(envelope.type);
  scratch.trace.parse_micros = parse_micros;
  SteadyClock::time_point started = SteadyClock::now();
  protocol::Envelope response = DispatchRead(envelope, *snap, &scratch);
  SteadyClock::time_point handled = SteadyClock::now();
  Bytes wire = response.Serialize();
  SteadyClock::time_point serialized = SteadyClock::now();
  uint64_t handle_micros = MicrosBetween(started, handled);
  scratch.trace.serialize_micros = MicrosBetween(handled, serialized);
  // On the read path lock_wait (the observation-log mutex wait, recorded
  // by the select pipeline) is a sub-span of handle, so the total is
  // parse + handle + serialize — not lock_wait again.
  scratch.trace.total_micros = scratch.trace.parse_micros + handle_micros +
                               scratch.trace.serialize_micros;
  RecordRequestMetrics(scratch.trace, &scratch.cur, envelope.type,
                       response.type, handle_micros);
  return wire;
}

Bytes UntrustedServer::HandleRequest(const Bytes& request) {
  return HandleRequest(request, nullptr);
}

Bytes UntrustedServer::HandleRequest(const Bytes& request,
                                     const void* dispatcher) {
  const bool timed = runtime_options_.enable_metrics;
  // One timestamp per stage boundary, each closing one span and opening
  // the next (5 clock reads per request, not a Reset/Elapsed pair per
  // stage).
  using SteadyClock = Stopwatch::Clock;
  SteadyClock::time_point entered{};
  if (timed) entered = SteadyClock::now();
  auto envelope = protocol::Envelope::Parse(request);
  if (!envelope.ok()) {
    if (timed) ins_.errors->Add();
    return protocol::MakeErrorEnvelope(envelope.status()).Serialize();
  }
  SteadyClock::time_point parsed{};
  if (timed) parsed = SteadyClock::now();
  if (IsSnapshotRead(*envelope)) {
    // Snapshot reads take no exclusive resource, so they are exempt from
    // the exclusive-mutation-dispatcher assert and may arrive from any
    // thread (NetServer read workers, the metrics responder, tests).
    return HandleReadRequest(*envelope,
                             timed ? MicrosBetween(entered, parsed) : 0);
  }
#ifndef NDEBUG
  const void* bound = bound_dispatcher_.load(std::memory_order_acquire);
  assert((bound == nullptr || bound == dispatcher) &&
         "UntrustedServer has an exclusive MUTATION dispatcher bound (a "
         "running NetServer); direct mutating HandleRequest calls bypass "
         "the single-writer dispatch loop");
#else
  (void)dispatcher;
#endif
  // Single-writer mutation loop: concurrent mutators queue here; snapshot
  // reads never do. Storage, the relation map, and the Merkle trees are
  // only ever touched under this lock.
  std::lock_guard<std::mutex> lock(dispatch_mutex_);
  if (!timed) {
    protocol::Envelope response = Dispatch(*envelope);
    PublishDirtyLocked();
    return response.Serialize();
  }

  SteadyClock::time_point locked = SteadyClock::now();
  // trace_ and cur_ are members (not locals) so the select pipeline and
  // proof builder — called below Dispatch, still under this lock — can
  // accumulate their stage spans into the same request's entry.
  trace_.Reset();
  cur_ = PendingRequestStat{};
  trace_.op = OpSlug(envelope->type);
  trace_.parse_micros = MicrosBetween(entered, parsed);
  trace_.lock_wait_micros = MicrosBetween(parsed, locked);
  protocol::Envelope response = Dispatch(*envelope);
  // Publishing is part of the mutation's cost (and its handle span):
  // readers must see this request's effects the moment its response can
  // be on the wire.
  PublishDirtyLocked();
  SteadyClock::time_point handled = SteadyClock::now();
  Bytes wire = response.Serialize();
  SteadyClock::time_point serialized = SteadyClock::now();
  uint64_t handle_micros = MicrosBetween(locked, handled);
  trace_.serialize_micros = MicrosBetween(handled, serialized);
  trace_.total_micros = trace_.parse_micros + trace_.lock_wait_micros +
                        handle_micros + trace_.serialize_micros;
  RecordRequestMetrics(trace_, &cur_, envelope->type, response.type,
                       handle_micros);
  return wire;
}

}  // namespace server
}  // namespace dbph
