#include "server/planner/trapdoor_index.h"

#include "swp/match_kernel.h"
#include "swp/params.h"

namespace dbph {
namespace server {
namespace planner {

const std::vector<uint64_t>* TrapdoorIndex::Peek(
    const Bytes& trapdoor_bytes) const {
  if (trapdoors_.count(trapdoor_bytes) == 0) return nullptr;
  // HashIndex drops a key whose last value is deleted, so a memoized
  // trapdoor with no surviving matches maps to the shared empty list.
  return &postings_.Lookup(trapdoor_bytes);
}

const std::vector<uint64_t>* TrapdoorIndex::Lookup(
    const Bytes& trapdoor_bytes) const {
  const std::vector<uint64_t>* postings = Peek(trapdoor_bytes);
  if (postings == nullptr) {
    ++stats_.misses;
  } else {
    ++stats_.hits;
  }
  return postings;
}

void TrapdoorIndex::Memoize(const Bytes& trapdoor_bytes,
                            const swp::Trapdoor& trapdoor,
                            const std::vector<uint64_t>& postings) {
  if (trapdoors_.count(trapdoor_bytes) > 0) return;  // already memoized
  if (AtCapacity()) return;  // full: existing entries keep serving
  trapdoors_.emplace(trapdoor_bytes, trapdoor);
  for (uint64_t rid : postings) postings_.Insert(trapdoor_bytes, rid);
  ++stats_.memoized;
}

void TrapdoorIndex::OnAppend(
    uint32_t check_length,
    const std::vector<std::pair<uint64_t, const swp::EncryptedDocument*>>&
        added) {
  if (added.empty() || trapdoors_.empty()) return;
  // Eager maintenance costs added.size() trapdoor evaluations per
  // memoized entry, inside the dispatch lock. Maintain entries while
  // the budget lasts; evict (not: serve stale) the entries we cannot
  // afford — they rebuild at their next scan. A mutation-heavy
  // deployment thus keeps a smaller warm memo instead of stalling the
  // server behind index bookkeeping.
  size_t spent = 0;
  for (auto it = trapdoors_.begin(); it != trapdoors_.end();) {
    const auto& [trapdoor_bytes, trapdoor] = *it;
    if (max_append_evals_ > 0 && spent + added.size() > max_append_evals_) {
      (void)postings_.DeleteKey(trapdoor_bytes);
      it = trapdoors_.erase(it);
      ++stats_.invalidations;
      continue;
    }
    swp::SwpParams params;
    params.word_length = trapdoor.target.size();
    params.check_length = check_length;
    // One precomputed schedule per memoized trapdoor, reused across all
    // appended documents — the dispatch-lock time this maintenance
    // spends is dominated by PRF evaluations, so halving the
    // compressions per eval matters here as much as in the scan.
    // Only membership is needed (not which slot matched), so the first
    // matching word short-circuits the document.
    swp::MatchContext context(params, trapdoor);
    // `added` is in storage (append) order and appended records sort
    // after every existing one, so pushing matches in this order keeps
    // each posting list in exact storage order.
    for (const auto& [rid, doc] : added) {
      ++stats_.append_evals;
      bool matched = false;
      for (const Bytes& word : doc->words) {
        if (context.Matches(word)) {
          matched = true;
          break;
        }
      }
      if (matched) postings_.Insert(trapdoor_bytes, rid);
    }
    spent += added.size();
    ++it;
  }
}

void TrapdoorIndex::OnDelete(const std::vector<uint64_t>& removed) {
  if (removed.empty() || trapdoors_.empty()) return;
  // One pass per posting list (order-preserving), set lookups per
  // element: O(index size + removed), a memory walk proportional to
  // what the index holds — no crypto, no budget needed.
  std::unordered_set<uint64_t> removed_set(removed.begin(), removed.end());
  for (const auto& [trapdoor_bytes, trapdoor] : trapdoors_) {
    (void)trapdoor;
    (void)postings_.DeleteValues(trapdoor_bytes, removed_set);
  }
}

void TrapdoorIndex::Clear() {
  postings_ = storage::HashIndex();
  trapdoors_.clear();
}

}  // namespace planner
}  // namespace server
}  // namespace dbph
