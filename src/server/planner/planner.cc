#include "server/planner/planner.h"

#include <map>
#include <memory>
#include <utility>

#include "common/macros.h"
#include "common/stopwatch.h"

namespace dbph {
namespace server {
namespace planner {

QueryPlan PlanSelect(const ExecutionContext& ctx, const Bytes& trapdoor_bytes,
                     const std::vector<uint64_t>** postings_out,
                     bool record_stats) {
  QueryPlan plan;
  plan.num_records = ctx.records->size();
  plan.num_shards = ctx.num_shards;
  if (postings_out != nullptr) *postings_out = nullptr;
  if (ctx.index != nullptr) {
    if (const std::vector<uint64_t>* postings =
            record_stats ? ctx.index->Lookup(trapdoor_bytes)
                         : ctx.index->Peek(trapdoor_bytes)) {
      plan.path = AccessPath::kIndexLookup;
      plan.posting_size = postings->size();
      if (postings_out != nullptr) *postings_out = postings;
      return plan;
    }
    plan.will_memoize = !ctx.index->AtCapacity();
  }
  return plan;
}

protocol::PlanReport MakePlanReport(const ExecutionContext& ctx,
                                    const QueryPlan& plan,
                                    const std::string& relation) {
  protocol::PlanReport report;
  report.relation = relation;
  report.access_path = plan.path == AccessPath::kIndexLookup
                           ? protocol::PlanAccessPath::kIndexLookup
                           : protocol::PlanAccessPath::kFullScan;
  report.num_records = static_cast<uint32_t>(plan.num_records);
  report.posting_size = static_cast<uint32_t>(plan.posting_size);
  report.num_shards = static_cast<uint32_t>(plan.num_shards);
  report.will_memoize = plan.will_memoize;
  report.index_enabled = ctx.index != nullptr;
  report.indexed_trapdoors = static_cast<uint32_t>(
      ctx.index != nullptr ? ctx.index->num_trapdoors() : 0);
  // The scan path's predicted PRF-evaluation count: every stored word
  // slot is matched exactly once. The index path evaluates nothing.
  report.match_evals =
      plan.path == AccessPath::kFullScan ? ctx.word_slots : 0;
  return report;
}

namespace {

/// Serves one index-path select: fetch the memoized record ids from the
/// heap, in posting (= storage) order. The posting list replays exactly
/// what a full scan of this trapdoor matched, so the fetched documents
/// are byte-identical to the scan's output.
Status FetchPostings(const ExecutionContext& ctx,
                     const std::vector<uint64_t>& postings,
                     std::vector<runtime::ShardMatch>* out) {
  out->reserve(postings.size());
  for (uint64_t packed : postings) {
    storage::RecordId rid = storage::RecordId::Unpack(packed);
    DBPH_ASSIGN_OR_RETURN(swp::EncryptedDocument doc,
                          runtime::ReadStoredDocument(*ctx.heap, rid));
    out->push_back({rid, std::move(doc)});
  }
  return Status::OK();
}

}  // namespace

std::vector<PlannedOutcome> PlanExecutor::Execute(
    const std::vector<SelectTask>& tasks, ExecuteTiming* timing) {
  std::vector<PlannedOutcome> outcomes(tasks.size());
  std::vector<Bytes> trapdoor_bytes(tasks.size());
  const bool timed = timing != nullptr;
  // Chained timestamps: each boundary read closes one span and opens
  // the next, so an index-path task costs 3 clock reads, not a
  // Reset/Elapsed pair per span.
  using SteadyClock = Stopwatch::Clock;
  const auto micros_between = [](SteadyClock::time_point from,
                                 SteadyClock::time_point to) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(to - from)
            .count());
  };
  SteadyClock::time_point mark{};

  // Plan every task, serving index hits inline (posting lists are the
  // small case by construction) and collecting scan-path tasks into one
  // parallel wave. One sharded view per distinct relation (records
  // vector), shared by every scan of that relation in the wave.
  std::map<const std::vector<storage::RecordId>*,
           std::unique_ptr<runtime::ShardedRelation>>
      views;
  std::vector<runtime::SelectJob> jobs(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    const SelectTask& task = tasks[i];
    if (!task.resolution.ok()) {
      outcomes[i].status = task.resolution;
      continue;
    }
    task.query->trapdoor.AppendTo(&trapdoor_bytes[i]);
    const std::vector<uint64_t>* postings = nullptr;
    if (timed) mark = SteadyClock::now();
    outcomes[i].plan = PlanSelect(task.ctx, trapdoor_bytes[i], &postings);
    if (timed) {
      SteadyClock::time_point planned = SteadyClock::now();
      timing->plan_micros += micros_between(mark, planned);
      mark = planned;
    }
    if (outcomes[i].plan.path == AccessPath::kIndexLookup) {
      outcomes[i].status =
          FetchPostings(task.ctx, *postings, &outcomes[i].matches);
      if (!outcomes[i].status.ok()) outcomes[i].matches.clear();
      if (timed) {
        timing->index_fetch_micros +=
            micros_between(mark, SteadyClock::now());
        ++timing->index_queries;
      }
      continue;
    }
    std::unique_ptr<runtime::ShardedRelation>& view = views[task.ctx.records];
    if (!view) {
      view = std::make_unique<runtime::ShardedRelation>(
          task.ctx.heap, task.ctx.records, task.ctx.check_length,
          task.ctx.num_shards, task.ctx.use_scan_kernel);
    }
    jobs[i].view = view.get();
    jobs[i].trapdoor = &task.query->trapdoor;
    if (timed) ++timing->scan_queries;
  }

  // The scan-wave span is only timed when a scan actually runs: pure
  // index waves skip both reads (and never recorded a scan histogram
  // sample anyway).
  const bool timed_scans = timed && timing->scan_queries > 0;
  if (timed_scans) mark = SteadyClock::now();
  runtime::BatchExecutor executor(pool_);
  std::vector<runtime::SelectOutcome> scans = executor.ExecuteSelects(jobs);

  // Fold scan results back and memoize, in task order. Two identical
  // trapdoors planned as scans in one wave both scanned (deterministic,
  // identical results); Memoize is idempotent, so the first wins and the
  // second is a no-op.
  for (size_t i = 0; i < tasks.size(); ++i) {
    if (!outcomes[i].status.ok() || jobs[i].view == nullptr) continue;
    outcomes[i].status = scans[i].status;
    outcomes[i].match_evals = scans[i].match_evals;
    if (timed) timing->match_evals += scans[i].match_evals;
    if (!outcomes[i].status.ok()) continue;
    outcomes[i].matches = std::move(scans[i].matches);
    TrapdoorIndex* index = tasks[i].ctx.index;
    if (index != nullptr) {
      std::vector<uint64_t> postings;
      postings.reserve(outcomes[i].matches.size());
      for (const runtime::ShardMatch& match : outcomes[i].matches) {
        postings.push_back(match.rid.Pack());
      }
      index->Memoize(trapdoor_bytes[i], tasks[i].query->trapdoor, postings);
    }
  }
  if (timed_scans) {
    timing->scan_micros += micros_between(mark, SteadyClock::now());
  }
  return outcomes;
}

}  // namespace planner
}  // namespace server
}  // namespace dbph
