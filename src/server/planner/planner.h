#ifndef DBPH_SERVER_PLANNER_PLANNER_H_
#define DBPH_SERVER_PLANNER_PLANNER_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "dbph/query.h"
#include "protocol/plan_report.h"
#include "server/planner/trapdoor_index.h"
#include "server/runtime/batch_executor.h"
#include "server/runtime/sharded_relation.h"
#include "server/runtime/thread_pool.h"
#include "storage/heapfile.h"

namespace dbph {
namespace server {
namespace planner {

/// How a planned select touches storage.
enum class AccessPath {
  kFullScan,     ///< sharded trapdoor scan over every stored document
  kIndexLookup,  ///< memoized posting list: fetch matched records only
};

/// \brief Everything the planner and executor need about one relation:
/// borrowed views of the server's storage, the scan parallelism, and the
/// relation's trapdoor index (null = index disabled). When built from the
/// live server state it is valid only under the single-writer dispatch
/// lock, like the runtime views; the snapshot read path builds the
/// equivalent views from an immutable published RelationSnapshot instead
/// and needs no lock (see server/snapshot.h).
struct ExecutionContext {
  const storage::HeapFile* heap = nullptr;
  const std::vector<storage::RecordId>* records = nullptr;
  uint32_t check_length = 4;
  size_t num_shards = 1;
  TrapdoorIndex* index = nullptr;
  /// Total word slots stored across the relation — the predicted PRF
  /// evaluation count a full scan reports in EXPLAIN.
  uint64_t word_slots = 0;
  /// Routes scan-path tasks through the batched match kernel
  /// (ServerRuntimeOptions::enable_scan_kernel). Results are
  /// bit-identical either way.
  bool use_scan_kernel = true;
};

/// \brief The chosen execution strategy for one select.
struct QueryPlan {
  AccessPath path = AccessPath::kFullScan;
  size_t num_records = 0;   ///< documents a full scan would touch
  size_t posting_size = 0;  ///< documents the index path fetches
  size_t num_shards = 1;    ///< scan fan-out (kFullScan)
  bool will_memoize = false;  ///< scan result seeds the index afterwards
};

/// \brief Plans one select against a relation: index lookup when the
/// exact trapdoor has a memoized posting list, full scan otherwise.
/// Pure — consults but never mutates the index (Lookup stats aside).
/// `postings_out`, when non-null, receives the matched posting list on
/// the index path (nullptr on the scan path) so the executor needs no
/// second lookup. `record_stats` is false for plan-only inspection
/// (EXPLAIN), which must not count toward the index's hit/miss stats.
QueryPlan PlanSelect(const ExecutionContext& ctx, const Bytes& trapdoor_bytes,
                     const std::vector<uint64_t>** postings_out = nullptr,
                     bool record_stats = true);

/// \brief A QueryPlan rendered for the kExplainResult envelope.
protocol::PlanReport MakePlanReport(const ExecutionContext& ctx,
                                    const QueryPlan& plan,
                                    const std::string& relation);

/// \brief One select to plan and execute. A failed resolution (unknown
/// relation) carries its error through the pipeline untouched.
struct SelectTask {
  ExecutionContext ctx;
  const core::EncryptedQuery* query = nullptr;
  Status resolution = Status::OK();
};

/// \brief The planned select's outcome: matches in exact storage order —
/// byte-identical, path-independent — plus the plan that produced them.
struct PlannedOutcome {
  QueryPlan plan;
  Status status = Status::OK();
  std::vector<runtime::ShardMatch> matches;
  /// PRF evaluations the scan path actually performed for this task
  /// (kernel scans only; 0 on the index path and the scalar path).
  uint64_t match_evals = 0;
};

/// \brief The single plan/execute pipeline every select-shaped request
/// goes through: UntrustedServer::Select, SelectBatch (hence conjunction
/// waves and the SQL executor's remote selects) all build SelectTasks
/// and call Execute.
///
/// Execution contract: outcomes[i] corresponds to tasks[i] and its
/// matches are byte-identical — documents and order — to a sequential
/// scan of the same records, whichever access path ran. Index-path
/// tasks fetch their posting lists inline; scan-path tasks run as one
/// data-parallel wave over the worker pool (the existing batch
/// executor); completed scans are memoized into each task's index in
/// task order. Logging stays with the caller: the pipeline computes
/// matches, the server records observations.
class PlanExecutor {
 public:
  /// Where one Execute call's wall time went, for the obs layer: the
  /// planning decisions, the inline index-path posting fetches, and the
  /// parallel scan wave (including the fold/memoize pass). Filled only
  /// when the caller asks — a null timing pointer costs zero clock reads.
  struct ExecuteTiming {
    uint64_t plan_micros = 0;
    uint64_t index_fetch_micros = 0;
    uint64_t scan_micros = 0;
    size_t index_queries = 0;  ///< tasks served from posting lists
    size_t scan_queries = 0;   ///< tasks that ran in the scan wave
    uint64_t match_evals = 0;  ///< PRF evaluations across the scan wave
  };

  /// The pool must outlive the executor; null runs scans inline.
  explicit PlanExecutor(runtime::ThreadPool* pool) : pool_(pool) {}

  std::vector<PlannedOutcome> Execute(const std::vector<SelectTask>& tasks,
                                      ExecuteTiming* timing = nullptr);

 private:
  runtime::ThreadPool* pool_;
};

}  // namespace planner
}  // namespace server
}  // namespace dbph

#endif  // DBPH_SERVER_PLANNER_PLANNER_H_
