#ifndef DBPH_SERVER_PLANNER_TRAPDOOR_INDEX_H_
#define DBPH_SERVER_PLANNER_TRAPDOOR_INDEX_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "storage/hash_index.h"
#include "swp/search.h"

namespace dbph {
namespace server {
namespace planner {

/// \brief Server-side trapdoor → posting-list index for one relation.
///
/// Memoizes the outcome of full trapdoor scans: after Eve has evaluated
/// trapdoor ϕ against every stored document once, the matched record ids
/// (in storage order) are cached so a repeat of the same ϕ becomes a
/// posting-list fetch instead of an O(n) scan.
///
/// Leakage argument (see README "Query planning & indexing"): every
/// posting list is computed from data Eve already holds — the trapdoor
/// bytes and ciphertext documents she logged, and the match outcomes she
/// herself evaluated. The index is a data structure Eve could build from
/// her ObservationLog alone; maintaining it reveals nothing beyond the
/// log, and serving from it must be (and is) byte-identical to scanning.
///
/// Thread model: all mutation of the *live* index happens under the
/// server's single-writer dispatch lock, exactly like the relation map.
/// Snapshot readers never touch the live index: each published relation
/// snapshot carries a frozen copy, read via the stats-free Peek (hit/miss
/// accounting for the read path lives in server-side atomics instead, and
/// memoization of a scan a reader performed re-enters the dispatch lock —
/// see UntrustedServer::TryMemoizeFromSnapshot). The index is volatile
/// cache: recovery (RestoreState / WAL replay) starts cold and
/// deterministically rebuilds entries as queries repeat — correctness
/// never depends on index contents.
class TrapdoorIndex {
 public:
  /// Caps how many distinct trapdoors this index memoizes (0 =
  /// unlimited). The cap bounds two costs on a long-running server:
  /// index memory (otherwise O(distinct trapdoors ever queried)) and
  /// append maintenance (OnAppend evaluates every memoized trapdoor
  /// against each new document, inside the dispatch lock). At capacity
  /// the policy is stop-memoizing: existing entries keep serving and
  /// staying exact; new trapdoors simply keep scanning — a performance
  /// plateau, never a correctness cliff.
  void set_max_trapdoors(size_t max) { max_trapdoors_ = max; }
  bool AtCapacity() const {
    return max_trapdoors_ > 0 && trapdoors_.size() >= max_trapdoors_;
  }

  /// The memoized posting list for a trapdoor (record ids in storage
  /// order), or nullptr when this exact trapdoor has never completed a
  /// full scan. An empty list is a real answer ("scanned, nothing
  /// matched"), distinct from nullptr. Lookup counts toward the
  /// hit/miss stats (an executing query); Peek is the stats-free
  /// variant for plan inspection (EXPLAIN), so stats keep measuring
  /// queries served, not plans printed.
  const std::vector<uint64_t>* Lookup(const Bytes& trapdoor_bytes) const;
  const std::vector<uint64_t>* Peek(const Bytes& trapdoor_bytes) const;

  /// Memoizes a completed full scan. `trapdoor` is the parsed form of
  /// `trapdoor_bytes` (kept for incremental maintenance on appends).
  /// Idempotent: a trapdoor that is already memoized is left untouched —
  /// scans are deterministic, so the cached list is already correct. A
  /// no-op at capacity.
  void Memoize(const Bytes& trapdoor_bytes, const swp::Trapdoor& trapdoor,
               const std::vector<uint64_t>& postings);

  /// Incremental maintenance for AppendTuples: evaluates every memoized
  /// trapdoor against the newly appended documents and extends the
  /// matching posting lists. `added` pairs each new record id with its
  /// document, in storage (append) order, so extended lists stay in
  /// storage order.
  ///
  /// Eager maintenance bills added.size() trapdoor evaluations per
  /// memoized entry, inside the dispatch lock. Entries are maintained
  /// while the per-append evaluation budget lasts; the rest are evicted
  /// (always correct for a cache — they rebuild at their next scan), so
  /// an append can never stall the server behind index bookkeeping and
  /// a mutation-heavy deployment settles into a smaller warm memo.
  void OnAppend(
      uint32_t check_length,
      const std::vector<std::pair<uint64_t, const swp::EncryptedDocument*>>&
          added);

  /// Budget for OnAppend's eager maintenance, in trapdoor evaluations
  /// (0 = unlimited). Defaults to 16k ≈ a few milliseconds of HMACs,
  /// which also caps the steady-state memo size a write-heavy workload
  /// can keep warm (budget / documents-per-append entries).
  void set_max_append_evals(size_t max) { max_append_evals_ = max; }

  /// Incremental maintenance for DeleteWhere: removes the deleted record
  /// ids from every posting list. Relative order of survivors is
  /// preserved.
  void OnDelete(const std::vector<uint64_t>& removed);

  void Clear();

  size_t num_trapdoors() const { return trapdoors_.size(); }
  /// Total posting entries across all memoized trapdoors.
  size_t num_postings() const { return postings_.size(); }

  struct Stats {
    uint64_t hits = 0;          ///< lookups answered from a posting list
    uint64_t misses = 0;        ///< lookups that fell through to a scan
    uint64_t memoized = 0;      ///< scans whose result was cached
    uint64_t append_evals = 0;  ///< trapdoor×document evaluations on append
    uint64_t invalidations = 0; ///< entries evicted by over-budget appends
  };
  const Stats& stats() const { return stats_; }

 private:
  size_t max_trapdoors_ = 0;
  size_t max_append_evals_ = 16 * 1024;
  /// Posting lists, keyed by serialized trapdoor bytes.
  storage::HashIndex postings_;
  /// Memoized trapdoors in parsed form (presence set + maintenance input).
  /// Keyed identically to postings_; a key present here with no postings_
  /// entry encodes a memoized empty result.
  std::map<Bytes, swp::Trapdoor> trapdoors_;
  mutable Stats stats_;
};

}  // namespace planner
}  // namespace server
}  // namespace dbph

#endif  // DBPH_SERVER_PLANNER_TRAPDOOR_INDEX_H_
