#ifndef DBPH_SERVER_OBSERVATION_H_
#define DBPH_SERVER_OBSERVATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace dbph {
namespace server {

/// \brief One executed query as Eve sees it: the opaque trapdoor bytes and
/// the identities (record ids) of the documents that matched.
///
/// This is precisely the "information revealed by queries and their
/// results" that Section 2 of the paper shows to be fatal: Eve can count
/// result sizes and intersect result sets without any keys.
struct QueryObservation {
  std::string relation;
  Bytes trapdoor_bytes;
  std::vector<uint64_t> matched_records;

  size_t result_size() const { return matched_records.size(); }
};

/// \brief Everything the honest-but-curious server accumulates.
class ObservationLog {
 public:
  void RecordStore(const std::string& relation, size_t num_documents,
                   size_t ciphertext_bytes) {
    stores_.push_back({relation, num_documents, ciphertext_bytes});
  }

  void RecordQuery(QueryObservation observation) {
    queries_.push_back(std::move(observation));
  }

  struct StoreObservation {
    std::string relation;
    size_t num_documents = 0;
    size_t ciphertext_bytes = 0;
  };

  const std::vector<StoreObservation>& stores() const { return stores_; }
  const std::vector<QueryObservation>& queries() const { return queries_; }

  void Clear() {
    stores_.clear();
    queries_.clear();
  }

  /// Record ids present in both observations' results — Eve's basic
  /// inference primitive (used by the hospital and John attacks).
  static std::vector<uint64_t> Intersect(const QueryObservation& a,
                                         const QueryObservation& b);

 private:
  std::vector<StoreObservation> stores_;
  std::vector<QueryObservation> queries_;
};

}  // namespace server
}  // namespace dbph

#endif  // DBPH_SERVER_OBSERVATION_H_
