#ifndef DBPH_SERVER_OBSERVATION_H_
#define DBPH_SERVER_OBSERVATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "obs/metrics.h"

namespace dbph {
namespace server {

/// \brief One executed query as Eve sees it: the opaque trapdoor bytes and
/// the identities (record ids) of the documents that matched.
///
/// This is precisely the "information revealed by queries and their
/// results" that Section 2 of the paper shows to be fatal: Eve can count
/// result sizes and intersect result sets without any keys.
struct QueryObservation {
  std::string relation;
  Bytes trapdoor_bytes;
  std::vector<uint64_t> matched_records;

  size_t result_size() const { return matched_records.size(); }
};

/// How much of her view Eve retains.
enum class ObservationMode {
  /// Every query kept verbatim (trapdoor bytes + matched ids). The
  /// Section 2 games need this; memory grows with query count.
  kFull,
  /// Bounded: aggregate counters and a result-size histogram only; no
  /// per-query vectors. For long-running daemons under heavy traffic
  /// (`dbph_serverd --observation=aggregate`) — a transcript that grows
  /// O(distinct result sizes) instead of O(queries).
  kAggregate,
};

/// \brief Everything the honest-but-curious server accumulates.
class ObservationLog {
 public:
  /// Aggregate counters, maintained in both modes (cheap); in kAggregate
  /// mode they are all that survives.
  struct Aggregate {
    uint64_t num_stores = 0;
    uint64_t documents_stored = 0;
    uint64_t ciphertext_bytes = 0;
    uint64_t num_queries = 0;
    uint64_t matched_total = 0;
    /// Result-size distribution, log2-bucketed — the shared obs
    /// histogram type (count/sum/max + buckets + quantiles) instead of
    /// the bespoke exact map this used to be: O(1) memory regardless of
    /// how many distinct result sizes occur, same type the metrics
    /// registry exports, one histogram implementation to maintain.
    obs::Histogram result_size_histogram{obs::Unit::kCount};
  };

  /// Switching to kAggregate folds nothing retroactively beyond what the
  /// always-on counters already hold and drops the per-query vectors;
  /// switching back to kFull resumes retention from that point (the
  /// dropped transcript is gone).
  void SetMode(ObservationMode mode) {
    mode_ = mode;
    if (mode_ == ObservationMode::kAggregate) {
      stores_.clear();
      stores_.shrink_to_fit();
      queries_.clear();
      queries_.shrink_to_fit();
    }
  }
  ObservationMode mode() const { return mode_; }

  void RecordStore(const std::string& relation, size_t num_documents,
                   size_t ciphertext_bytes) {
    ++aggregate_.num_stores;
    aggregate_.documents_stored += num_documents;
    aggregate_.ciphertext_bytes += ciphertext_bytes;
    if (mode_ == ObservationMode::kFull) {
      stores_.push_back({relation, num_documents, ciphertext_bytes});
    }
  }

  void RecordQuery(QueryObservation observation) {
    ++aggregate_.num_queries;
    aggregate_.matched_total += observation.result_size();
    aggregate_.result_size_histogram.Record(observation.result_size());
    if (mode_ == ObservationMode::kFull) {
      queries_.push_back(std::move(observation));
    }
  }

  struct StoreObservation {
    std::string relation;
    size_t num_documents = 0;
    size_t ciphertext_bytes = 0;
  };

  /// Per-event transcripts; empty in kAggregate mode.
  const std::vector<StoreObservation>& stores() const { return stores_; }
  const std::vector<QueryObservation>& queries() const { return queries_; }

  const Aggregate& aggregate() const { return aggregate_; }

  void Clear() {
    stores_.clear();
    queries_.clear();
    aggregate_ = Aggregate{};
  }

  /// Record ids present in both observations' results — Eve's basic
  /// inference primitive (used by the hospital and John attacks).
  static std::vector<uint64_t> Intersect(const QueryObservation& a,
                                         const QueryObservation& b);

 private:
  ObservationMode mode_ = ObservationMode::kFull;
  std::vector<StoreObservation> stores_;
  std::vector<QueryObservation> queries_;
  Aggregate aggregate_;
};

}  // namespace server
}  // namespace dbph

#endif  // DBPH_SERVER_OBSERVATION_H_
