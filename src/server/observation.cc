#include "server/observation.h"

#include <algorithm>
#include <set>

namespace dbph {
namespace server {

std::vector<uint64_t> ObservationLog::Intersect(const QueryObservation& a,
                                                const QueryObservation& b) {
  std::set<uint64_t> in_a(a.matched_records.begin(),
                          a.matched_records.end());
  std::vector<uint64_t> out;
  for (uint64_t rid : b.matched_records) {
    if (in_a.count(rid) > 0) out.push_back(rid);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace server
}  // namespace dbph
