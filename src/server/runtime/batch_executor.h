#ifndef DBPH_SERVER_RUNTIME_BATCH_EXECUTOR_H_
#define DBPH_SERVER_RUNTIME_BATCH_EXECUTOR_H_

#include <vector>

#include "common/result.h"
#include "server/runtime/sharded_relation.h"
#include "server/runtime/thread_pool.h"
#include "swp/scheme.h"

namespace dbph {
namespace server {
namespace runtime {

/// \brief One batched select to evaluate: a trapdoor against a sharded
/// view. A null view means the query already failed resolution (unknown
/// relation) and is skipped by the executor.
struct SelectJob {
  const ShardedRelation* view = nullptr;
  const swp::Trapdoor* trapdoor = nullptr;
};

/// \brief The result of one batched select, in storage order.
struct SelectOutcome {
  Status status = Status::OK();
  std::vector<ShardMatch> matches;
  /// PRF evaluations this query's scan performed (kernel path only;
  /// 0 when the view runs the scalar path). Summed across shards.
  uint64_t match_evals = 0;
};

/// \brief Runs a wave of selects data-parallel over shards and queries.
///
/// Every (query, shard) pair becomes one unit of work; the pool's
/// workers pull units greedily, so a shard of query 3 can be scanning
/// while a slow shard of query 0 is still running — trapdoor evaluation
/// is pipelined across both axes, and wall-clock time approaches
/// total_work / num_cores instead of sum over queries.
///
/// Determinism: per-query matches are merged in shard order, so each
/// outcome is byte-identical to a sequential scan of the same records,
/// and the caller can build the exact same ObservationLog entry it
/// would have recorded for a lone select.
class BatchExecutor {
 public:
  /// The pool must outlive the executor. A null pool runs inline
  /// (sequentially) — useful for tests and single-core deployments.
  explicit BatchExecutor(ThreadPool* pool) : pool_(pool) {}

  /// Evaluates all jobs; outcomes[i] corresponds to jobs[i]. Jobs with a
  /// null view yield an untouched default outcome (caller fills the
  /// resolution error).
  std::vector<SelectOutcome> ExecuteSelects(
      const std::vector<SelectJob>& jobs);

 private:
  ThreadPool* pool_;
};

}  // namespace runtime
}  // namespace server
}  // namespace dbph

#endif  // DBPH_SERVER_RUNTIME_BATCH_EXECUTOR_H_
