#include "server/runtime/batch_executor.h"

#include <utility>

namespace dbph {
namespace server {
namespace runtime {

namespace {

/// One (query, shard) unit in the flattened work grid.
struct Unit {
  size_t job = 0;
  size_t shard = 0;
};

}  // namespace

std::vector<SelectOutcome> BatchExecutor::ExecuteSelects(
    const std::vector<SelectJob>& jobs) {
  std::vector<SelectOutcome> outcomes(jobs.size());

  // Flatten to (job, shard) units and give every unit its own result
  // cell, so workers never contend on shared state.
  std::vector<Unit> units;
  std::vector<std::vector<ShardMatch>> cells;   // per unit, shard-local
  std::vector<Status> cell_status;              // per unit
  std::vector<uint64_t> cell_evals;             // per unit
  for (size_t j = 0; j < jobs.size(); ++j) {
    if (jobs[j].view == nullptr) continue;
    for (size_t s = 0; s < jobs[j].view->num_shards(); ++s) {
      units.push_back({j, s});
    }
  }
  cells.resize(units.size());
  cell_status.resize(units.size(), Status::OK());
  cell_evals.resize(units.size(), 0);

  auto run_unit = [&](size_t u) {
    const Unit& unit = units[u];
    const SelectJob& job = jobs[unit.job];
    cell_status[u] = job.view->ScanShard(unit.shard, *job.trapdoor, &cells[u],
                                         &cell_evals[u]);
  };

  if (pool_ != nullptr) {
    pool_->ParallelFor(units.size(), run_unit);
  } else {
    for (size_t u = 0; u < units.size(); ++u) run_unit(u);
  }

  // Merge per-shard cells back per query, in shard order, so each
  // outcome lists matches in exact storage order.
  for (size_t u = 0; u < units.size(); ++u) {
    SelectOutcome& outcome = outcomes[units[u].job];
    if (!cell_status[u].ok() && outcome.status.ok()) {
      outcome.status = cell_status[u];
    }
    outcome.match_evals += cell_evals[u];
    for (ShardMatch& match : cells[u]) {
      outcome.matches.push_back(std::move(match));
    }
  }
  for (size_t j = 0; j < jobs.size(); ++j) {
    if (!outcomes[j].status.ok()) outcomes[j].matches.clear();
  }
  return outcomes;
}

}  // namespace runtime
}  // namespace server
}  // namespace dbph
