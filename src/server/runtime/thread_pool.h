#ifndef DBPH_SERVER_RUNTIME_THREAD_POOL_H_
#define DBPH_SERVER_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dbph {
namespace server {
namespace runtime {

/// \brief Fixed-size worker pool for data-parallel server work.
///
/// The untrusted server's hot path is a trapdoor scan over every stored
/// document; the pool lets that scan use every core. Tasks must not
/// throw — the scan path reports failures through Status values, never
/// exceptions.
class ThreadPool {
 public:
  /// `num_threads == 0` picks std::thread::hardware_concurrency().
  explicit ThreadPool(size_t num_threads = 0);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Runs fn(0) .. fn(n-1) across the pool and returns when all calls
  /// have completed. The calling thread participates, so progress is
  /// guaranteed even with zero idle workers, and nested use from within
  /// a task cannot deadlock.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace runtime
}  // namespace server
}  // namespace dbph

#endif  // DBPH_SERVER_RUNTIME_THREAD_POOL_H_
