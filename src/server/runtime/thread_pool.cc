#include "server/runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace dbph {
namespace server {
namespace runtime {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }

  // Work-stealing by shared counter: workers and the caller all claim
  // indices until the range is exhausted; a latch signals completion.
  struct Wave {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mutex;
    std::condition_variable finished;
  };
  auto wave = std::make_shared<Wave>();

  auto drain = [wave, n, &fn] {
    for (;;) {
      size_t i = wave->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
      if (wave->done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard<std::mutex> lock(wave->mutex);
        wave->finished.notify_all();
      }
    }
  };

  size_t helpers = std::min(n - 1, workers_.size());
  for (size_t i = 0; i < helpers; ++i) Submit(drain);
  drain();

  std::unique_lock<std::mutex> lock(wave->mutex);
  wave->finished.wait(lock, [&] {
    return wave->done.load(std::memory_order_acquire) == n;
  });
}

}  // namespace runtime
}  // namespace server
}  // namespace dbph
