#include "server/runtime/sharded_relation.h"

#include <algorithm>

#include "common/macros.h"

namespace dbph {
namespace server {
namespace runtime {

Result<swp::EncryptedDocument> ReadStoredDocument(
    const storage::HeapFile& heap, storage::RecordId rid) {
  DBPH_ASSIGN_OR_RETURN(Bytes serialized, heap.Get(rid));
  ByteReader reader(serialized);
  return swp::EncryptedDocument::ReadFrom(&reader);
}

ShardedRelation::ShardedRelation(const storage::HeapFile* heap,
                                 const std::vector<storage::RecordId>* records,
                                 uint32_t check_length, size_t num_shards,
                                 bool use_kernel)
    : heap_(heap),
      records_(records),
      check_length_(check_length),
      use_kernel_(use_kernel) {
  const size_t n = records_->size();
  if (num_shards == 0) num_shards = 1;
  num_shards = std::min(num_shards, std::max<size_t>(n, 1));
  shards_.reserve(num_shards);
  // Balanced split: the first (n % num_shards) shards get one extra record.
  const size_t base = n / num_shards;
  const size_t extra = n % num_shards;
  size_t begin = 0;
  for (size_t i = 0; i < num_shards; ++i) {
    size_t len = base + (i < extra ? 1 : 0);
    shards_.push_back({begin, begin + len});
    begin += len;
  }
}

Status ShardedRelation::ScanShard(size_t index, const swp::Trapdoor& trapdoor,
                                  std::vector<ShardMatch>* out,
                                  uint64_t* match_evals) const {
  if (index >= shards_.size()) {
    return Status::InvalidArgument("shard index out of range");
  }
  swp::SwpParams params;
  params.word_length = trapdoor.target.size();
  params.check_length = check_length_;

  const Range& range = shards_[index];
  if (!use_kernel_) {
    for (size_t i = range.begin; i < range.end; ++i) {
      const storage::RecordId rid = (*records_)[i];
      DBPH_ASSIGN_OR_RETURN(swp::EncryptedDocument doc,
                            ReadStoredDocument(*heap_, rid));
      if (!swp::SearchDocument(params, trapdoor, doc).empty()) {
        out->push_back({rid, std::move(doc)});
      }
    }
    return Status::OK();
  }

  // Kernel path: match straight off the serialized record bytes.
  // CollectWordRefs performs exactly the bounds checks ReadFrom does,
  // so a record it rejects is re-parsed for the identical error
  // status, and only matching records pay the full deserialization
  // (nonce/tag copies, per-word Bytes allocations). The refs and bit
  // vectors are reused across the whole shard — zero allocations per
  // record in steady state.
  swp::MatchContext context(params, trapdoor);
  std::vector<swp::WordRef> refs;
  std::vector<uint8_t> match_bits;
  Status status = Status::OK();
  for (size_t i = range.begin; i < range.end && status.ok(); ++i) {
    const storage::RecordId rid = (*records_)[i];
    auto serialized = heap_->Get(rid);
    if (!serialized.ok()) {
      status = serialized.status();
      break;
    }
    refs.clear();
    if (!swp::CollectWordRefs(*serialized, &refs).ok()) {
      // Malformed record: surface the exact parse status the scalar
      // path would have returned.
      ByteReader reader(*serialized);
      auto parsed = swp::EncryptedDocument::ReadFrom(&reader);
      status = parsed.ok() ? Status::Internal("word-ref collection disagrees "
                                              "with document parse")
                           : parsed.status();
      break;
    }
    match_bits.resize(refs.size());
    bool any = false;
    if (!refs.empty()) {
      context.MatchMany(
          std::span<const uint8_t>(serialized->data(), serialized->size()),
          std::span<const swp::WordRef>(refs.data(), refs.size()),
          match_bits.data());
      for (uint8_t bit : match_bits) any |= (bit != 0);
    }
    if (any) {
      ByteReader reader(*serialized);
      auto parsed = swp::EncryptedDocument::ReadFrom(&reader);
      if (!parsed.ok()) {  // unreachable: CollectWordRefs accepted it
        status = parsed.status();
        break;
      }
      out->push_back({rid, std::move(*parsed)});
    }
  }
  if (match_evals != nullptr) *match_evals += context.match_evals();
  return status;
}

}  // namespace runtime
}  // namespace server
}  // namespace dbph
