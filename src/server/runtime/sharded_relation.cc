#include "server/runtime/sharded_relation.h"

#include <algorithm>

#include "common/macros.h"

namespace dbph {
namespace server {
namespace runtime {

Result<swp::EncryptedDocument> ReadStoredDocument(
    const storage::HeapFile& heap, storage::RecordId rid) {
  DBPH_ASSIGN_OR_RETURN(Bytes serialized, heap.Get(rid));
  ByteReader reader(serialized);
  return swp::EncryptedDocument::ReadFrom(&reader);
}

ShardedRelation::ShardedRelation(const storage::HeapFile* heap,
                                 const std::vector<storage::RecordId>* records,
                                 uint32_t check_length, size_t num_shards)
    : heap_(heap), records_(records), check_length_(check_length) {
  const size_t n = records_->size();
  if (num_shards == 0) num_shards = 1;
  num_shards = std::min(num_shards, std::max<size_t>(n, 1));
  shards_.reserve(num_shards);
  // Balanced split: the first (n % num_shards) shards get one extra record.
  const size_t base = n / num_shards;
  const size_t extra = n % num_shards;
  size_t begin = 0;
  for (size_t i = 0; i < num_shards; ++i) {
    size_t len = base + (i < extra ? 1 : 0);
    shards_.push_back({begin, begin + len});
    begin += len;
  }
}

Status ShardedRelation::ScanShard(size_t index, const swp::Trapdoor& trapdoor,
                                  std::vector<ShardMatch>* out) const {
  if (index >= shards_.size()) {
    return Status::InvalidArgument("shard index out of range");
  }
  swp::SwpParams params;
  params.word_length = trapdoor.target.size();
  params.check_length = check_length_;

  const Range& range = shards_[index];
  for (size_t i = range.begin; i < range.end; ++i) {
    const storage::RecordId rid = (*records_)[i];
    DBPH_ASSIGN_OR_RETURN(swp::EncryptedDocument doc,
                          ReadStoredDocument(*heap_, rid));
    if (!swp::SearchDocument(params, trapdoor, doc).empty()) {
      out->push_back({rid, std::move(doc)});
    }
  }
  return Status::OK();
}

}  // namespace runtime
}  // namespace server
}  // namespace dbph
