#ifndef DBPH_SERVER_RUNTIME_SHARDED_RELATION_H_
#define DBPH_SERVER_RUNTIME_SHARDED_RELATION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "storage/heapfile.h"
#include "swp/match_kernel.h"
#include "swp/search.h"

namespace dbph {
namespace server {
namespace runtime {

/// \brief One document that matched a trapdoor during a shard scan.
struct ShardMatch {
  storage::RecordId rid;
  swp::EncryptedDocument doc;
};

/// \brief Reads and parses one stored ciphertext document — the
/// heap-get + deserialize step shared by shard scans, the planner's
/// posting-list fetch, and the server's scan-shaped handlers.
Result<swp::EncryptedDocument> ReadStoredDocument(
    const storage::HeapFile& heap, storage::RecordId rid);

/// \brief A read-only sharded view of one stored relation.
///
/// Partitions the relation's record list into contiguous shards so a
/// trapdoor scan can run one task per shard. Shards preserve storage
/// order, so concatenating per-shard results in shard order reproduces
/// the sequential scan byte for byte — the observation log entry built
/// from a sharded scan is identical to the sequential one.
///
/// The view borrows the heap and record list; it is valid only while no
/// mutation (append/delete/drop) runs, which the server's dispatch
/// ordering guarantees.
class ShardedRelation {
 public:
  /// Splits `records` into at most `num_shards` balanced contiguous
  /// ranges (fewer when there are fewer records). `use_kernel` selects
  /// the batched match kernel for ScanShard; results are bit-identical
  /// either way (it is purely an A/B performance switch).
  ShardedRelation(const storage::HeapFile* heap,
                  const std::vector<storage::RecordId>* records,
                  uint32_t check_length, size_t num_shards,
                  bool use_kernel = true);

  size_t num_shards() const { return shards_.size(); }
  uint32_t check_length() const { return check_length_; }
  size_t num_records() const { return records_->size(); }

  /// Scans shard `index` with `trapdoor`: deserializes each record and
  /// appends the matching documents to `out` in storage order. Exactly
  /// the per-record work UntrustedServer::Select does, minus logging.
  /// With the kernel enabled, word boundaries are collected straight
  /// off the serialized bytes and PRF evaluations are batched through
  /// one precomputed-schedule MatchContext for the whole shard; only
  /// matching documents are fully parsed. `match_evals`, when non-null,
  /// accumulates the PRF evaluations performed (kernel path only —
  /// the scalar path reports 0, and the planner substitutes the
  /// relation's word-slot count for EXPLAIN predictions).
  Status ScanShard(size_t index, const swp::Trapdoor& trapdoor,
                   std::vector<ShardMatch>* out,
                   uint64_t* match_evals = nullptr) const;

 private:
  struct Range {
    size_t begin = 0;
    size_t end = 0;
  };

  const storage::HeapFile* heap_;
  const std::vector<storage::RecordId>* records_;
  uint32_t check_length_;
  bool use_kernel_;
  std::vector<Range> shards_;
};

}  // namespace runtime
}  // namespace server
}  // namespace dbph

#endif  // DBPH_SERVER_RUNTIME_SHARDED_RELATION_H_
