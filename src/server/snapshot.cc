#include "server/snapshot.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"

namespace dbph {
namespace server {

namespace {
/// See SetArenaCapForTesting. Plain (non-atomic) because tests set it
/// on one thread before building snapshots; production never writes it.
uint64_t g_arena_cap = 0xffffffffull;
}  // namespace

void SnapshotChunk::SetArenaCapForTesting(uint64_t cap) {
  g_arena_cap = cap;
}

void SnapshotChunk::Seal() {
  pos_in_chunk.clear();
  pos_in_chunk.reserve(docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    pos_in_chunk.emplace(docs[i].rid_packed, static_cast<uint32_t>(i));
  }

  // Build the scan arena: every word ciphertext copied into one
  // contiguous buffer, in (document, slot) order, so a trapdoor scan
  // streams linearly. Word boundaries come from CollectWordRefs, which
  // performs exactly the checks EncryptedDocument::ReadFrom does — a
  // document it rejects is marked and re-parsed at scan time for the
  // identical error status.
  word_arena.clear();
  word_refs.clear();
  word_first.assign(1, 0);
  doc_wellformed.assign(docs.size(), 1);
  arena_built = true;
  std::vector<swp::WordRef> doc_refs;
  for (size_t i = 0; i < docs.size() && arena_built; ++i) {
    doc_refs.clear();
    if (!swp::CollectWordRefs(docs[i].bytes, &doc_refs).ok()) {
      doc_wellformed[i] = 0;
      word_first.push_back(static_cast<uint32_t>(word_refs.size()));
      continue;
    }
    for (const swp::WordRef& ref : doc_refs) {
      const uint64_t at = word_arena.size();
      if (at + ref.length > g_arena_cap || word_refs.size() >= g_arena_cap) {
        // Offsets would overflow the 32-bit refs; scans of this chunk
        // fall back to the per-document scalar path.
        arena_built = false;
        break;
      }
      word_arena.insert(word_arena.end(), docs[i].bytes.begin() + ref.offset,
                        docs[i].bytes.begin() + ref.offset + ref.length);
      word_refs.push_back({static_cast<uint32_t>(at), ref.length});
    }
    word_first.push_back(static_cast<uint32_t>(word_refs.size()));
  }
  if (!arena_built) {
    word_arena.clear();
    word_refs.clear();
    word_first.clear();
    doc_wellformed.clear();
  }
}

uint64_t RelationSnapshot::PositionOf(uint64_t rid_packed) const {
  for (size_t c = 0; c < chunks.size(); ++c) {
    auto it = chunks[c]->pos_in_chunk.find(rid_packed);
    if (it != chunks[c]->pos_in_chunk.end()) {
      return chunk_first[c] + it->second;
    }
  }
  return kNotFound;
}

const SnapshotDoc& RelationSnapshot::doc(uint64_t position) const {
  // Find the chunk whose first position is the greatest <= position.
  size_t c = static_cast<size_t>(
      std::upper_bound(chunk_first.begin(), chunk_first.end(), position) -
      chunk_first.begin() - 1);
  return chunks[c]->docs[position - chunk_first[c]];
}

Result<swp::EncryptedDocument> RelationSnapshot::ParseDoc(
    uint64_t position) const {
  ByteReader reader(doc(position).bytes);
  return swp::EncryptedDocument::ReadFrom(&reader);
}

Status RelationSnapshot::FetchPostings(const std::vector<uint64_t>& postings,
                                       std::vector<SnapshotMatch>* out) const {
  out->reserve(postings.size());
  for (uint64_t packed : postings) {
    uint64_t position = PositionOf(packed);
    if (position == kNotFound) {
      // Unreachable by construction: the frozen index and frozen
      // documents come from the same critical section. Fail closed like
      // a heap miss would on the locked path.
      return Status::NotFound("record not found");
    }
    DBPH_ASSIGN_OR_RETURN(swp::EncryptedDocument parsed, ParseDoc(position));
    out->push_back({position, packed, std::move(parsed)});
  }
  return Status::OK();
}

Status RelationSnapshot::Scan(const swp::Trapdoor& trapdoor, size_t num_shards,
                              runtime::ThreadPool* pool,
                              std::vector<SnapshotMatch>* out,
                              uint64_t* match_evals) const {
  // Mirror runtime::ShardedRelation's balanced contiguous split so the
  // per-shard work (and thus the match order: shard order = storage
  // order) is identical to the locked scan path.
  const size_t n = num_docs;
  if (num_shards == 0) num_shards = 1;
  num_shards = std::min(num_shards, std::max<size_t>(n, 1));
  const size_t base = n / num_shards;
  const size_t extra = n % num_shards;
  std::vector<std::pair<size_t, size_t>> ranges;
  ranges.reserve(num_shards);
  size_t begin = 0;
  for (size_t i = 0; i < num_shards; ++i) {
    size_t len = base + (i < extra ? 1 : 0);
    ranges.emplace_back(begin, begin + len);
    begin += len;
  }

  swp::SwpParams params;
  params.word_length = trapdoor.target.size();
  params.check_length = check_length;

  std::vector<std::vector<SnapshotMatch>> shard_matches(ranges.size());
  std::vector<Status> shard_status(ranges.size(), Status::OK());
  std::vector<uint64_t> shard_evals(ranges.size(), 0);

  // The reference scalar sweep over global positions [begin, end):
  // parse every document, match every slot, keep matching documents in
  // position order. The kernel path below is bit-identical to this.
  const auto scan_scalar = [&](size_t shard, size_t begin, size_t end) {
    auto& matches = shard_matches[shard];
    for (size_t pos = begin; pos < end; ++pos) {
      ByteReader reader(doc(pos).bytes);
      auto parsed = swp::EncryptedDocument::ReadFrom(&reader);
      if (!parsed.ok()) {
        shard_status[shard] = parsed.status();
        return false;
      }
      if (!swp::SearchDocument(params, trapdoor, *parsed).empty()) {
        matches.push_back({pos, doc(pos).rid_packed, std::move(*parsed)});
      }
    }
    return true;
  };

  // The kernel sweep: one MatchContext per shard (precomputed HMAC
  // schedule + scratch), PRF evaluations batched through the multi-way
  // compression kernel over each chunk's contiguous word arena. Only
  // matching documents are parsed; a document CollectWordRefs rejected
  // is re-parsed for the exact scalar-path error status.
  const auto scan_kernel = [&](size_t shard) {
    swp::MatchContext context(params, trapdoor);
    std::vector<uint8_t> match_bits;
    auto& matches = shard_matches[shard];
    size_t pos = ranges[shard].first;
    const size_t end = ranges[shard].second;
    if (pos >= end) return;
    size_t c = static_cast<size_t>(
        std::upper_bound(chunk_first.begin(), chunk_first.end(), pos) -
        chunk_first.begin() - 1);
    for (; pos < end; ++c) {
      const SnapshotChunk& chunk = *chunks[c];
      const size_t cbegin = chunk_first[c];
      const size_t a = pos - cbegin;
      const size_t b = std::min(end - cbegin, chunk.docs.size());
      if (!chunk.arena_built) {
        if (!scan_scalar(shard, cbegin + a, cbegin + b)) return;
        pos = cbegin + b;
        continue;
      }
      size_t d = a;
      while (d < b) {
        if (!chunk.doc_wellformed[d]) {
          // Fail closed with the exact parse status the scalar path
          // would have surfaced for this document.
          shard_status[shard] = ParseDoc(cbegin + d).status();
          shard_evals[shard] = context.match_evals();
          return;
        }
        size_t e = d;
        while (e < b && chunk.doc_wellformed[e]) ++e;
        const uint32_t rbegin = chunk.word_first[d];
        const uint32_t rend = chunk.word_first[e];
        match_bits.resize(rend - rbegin);
        if (rend > rbegin) {
          context.MatchMany(
              std::span<const uint8_t>(chunk.word_arena.data(),
                                       chunk.word_arena.size()),
              std::span<const swp::WordRef>(chunk.word_refs.data() + rbegin,
                                            rend - rbegin),
              match_bits.data());
        }
        for (size_t w = d; w < e; ++w) {
          bool any = false;
          for (uint32_t r = chunk.word_first[w]; r < chunk.word_first[w + 1];
               ++r) {
            if (match_bits[r - rbegin] != 0) {
              any = true;
              break;
            }
          }
          if (!any) continue;
          auto parsed = ParseDoc(cbegin + w);
          if (!parsed.ok()) {  // unreachable: CollectWordRefs accepted it
            shard_status[shard] = parsed.status();
            shard_evals[shard] = context.match_evals();
            return;
          }
          matches.push_back(
              {cbegin + w, chunk.docs[w].rid_packed, std::move(*parsed)});
        }
        d = e;
      }
      pos = cbegin + b;
    }
    shard_evals[shard] = context.match_evals();
  };

  const auto scan_range = [&](size_t shard) {
    if (use_scan_kernel) {
      scan_kernel(shard);
    } else {
      scan_scalar(shard, ranges[shard].first, ranges[shard].second);
    }
  };
  if (pool != nullptr && ranges.size() > 1) {
    pool->ParallelFor(ranges.size(), scan_range);
  } else {
    for (size_t i = 0; i < ranges.size(); ++i) scan_range(i);
  }

  size_t total = 0;
  for (size_t i = 0; i < ranges.size(); ++i) {
    if (match_evals != nullptr) *match_evals += shard_evals[i];
    DBPH_RETURN_IF_ERROR(shard_status[i]);
    total += shard_matches[i].size();
  }
  out->reserve(out->size() + total);
  for (auto& matches : shard_matches) {
    for (auto& match : matches) out->push_back(std::move(match));
  }
  return Status::OK();
}

}  // namespace server
}  // namespace dbph
