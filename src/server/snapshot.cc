#include "server/snapshot.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"

namespace dbph {
namespace server {

void SnapshotChunk::Seal() {
  pos_in_chunk.clear();
  pos_in_chunk.reserve(docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    pos_in_chunk.emplace(docs[i].rid_packed, static_cast<uint32_t>(i));
  }
}

uint64_t RelationSnapshot::PositionOf(uint64_t rid_packed) const {
  for (size_t c = 0; c < chunks.size(); ++c) {
    auto it = chunks[c]->pos_in_chunk.find(rid_packed);
    if (it != chunks[c]->pos_in_chunk.end()) {
      return chunk_first[c] + it->second;
    }
  }
  return kNotFound;
}

const SnapshotDoc& RelationSnapshot::doc(uint64_t position) const {
  // Find the chunk whose first position is the greatest <= position.
  size_t c = static_cast<size_t>(
      std::upper_bound(chunk_first.begin(), chunk_first.end(), position) -
      chunk_first.begin() - 1);
  return chunks[c]->docs[position - chunk_first[c]];
}

Result<swp::EncryptedDocument> RelationSnapshot::ParseDoc(
    uint64_t position) const {
  ByteReader reader(doc(position).bytes);
  return swp::EncryptedDocument::ReadFrom(&reader);
}

Status RelationSnapshot::FetchPostings(const std::vector<uint64_t>& postings,
                                       std::vector<SnapshotMatch>* out) const {
  out->reserve(postings.size());
  for (uint64_t packed : postings) {
    uint64_t position = PositionOf(packed);
    if (position == kNotFound) {
      // Unreachable by construction: the frozen index and frozen
      // documents come from the same critical section. Fail closed like
      // a heap miss would on the locked path.
      return Status::NotFound("record not found");
    }
    DBPH_ASSIGN_OR_RETURN(swp::EncryptedDocument parsed, ParseDoc(position));
    out->push_back({position, packed, std::move(parsed)});
  }
  return Status::OK();
}

Status RelationSnapshot::Scan(const swp::Trapdoor& trapdoor, size_t num_shards,
                              runtime::ThreadPool* pool,
                              std::vector<SnapshotMatch>* out) const {
  // Mirror runtime::ShardedRelation's balanced contiguous split so the
  // per-shard work (and thus the match order: shard order = storage
  // order) is identical to the locked scan path.
  const size_t n = num_docs;
  if (num_shards == 0) num_shards = 1;
  num_shards = std::min(num_shards, std::max<size_t>(n, 1));
  const size_t base = n / num_shards;
  const size_t extra = n % num_shards;
  std::vector<std::pair<size_t, size_t>> ranges;
  ranges.reserve(num_shards);
  size_t begin = 0;
  for (size_t i = 0; i < num_shards; ++i) {
    size_t len = base + (i < extra ? 1 : 0);
    ranges.emplace_back(begin, begin + len);
    begin += len;
  }

  swp::SwpParams params;
  params.word_length = trapdoor.target.size();
  params.check_length = check_length;

  std::vector<std::vector<SnapshotMatch>> shard_matches(ranges.size());
  std::vector<Status> shard_status(ranges.size(), Status::OK());
  const auto scan_range = [&](size_t shard) {
    auto& matches = shard_matches[shard];
    for (size_t pos = ranges[shard].first; pos < ranges[shard].second; ++pos) {
      ByteReader reader(doc(pos).bytes);
      auto parsed = swp::EncryptedDocument::ReadFrom(&reader);
      if (!parsed.ok()) {
        shard_status[shard] = parsed.status();
        return;
      }
      if (!swp::SearchDocument(params, trapdoor, *parsed).empty()) {
        matches.push_back({pos, doc(pos).rid_packed, std::move(*parsed)});
      }
    }
  };
  if (pool != nullptr && ranges.size() > 1) {
    pool->ParallelFor(ranges.size(), scan_range);
  } else {
    for (size_t i = 0; i < ranges.size(); ++i) scan_range(i);
  }

  size_t total = 0;
  for (size_t i = 0; i < ranges.size(); ++i) {
    DBPH_RETURN_IF_ERROR(shard_status[i]);
    total += shard_matches[i].size();
  }
  out->reserve(out->size() + total);
  for (auto& matches : shard_matches) {
    for (auto& match : matches) out->push_back(std::move(match));
  }
  return Status::OK();
}

}  // namespace server
}  // namespace dbph
