#ifndef DBPH_SERVER_UNTRUSTED_SERVER_H_
#define DBPH_SERVER_UNTRUSTED_SERVER_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "dbph/encrypted_relation.h"
#include "dbph/query.h"
#include "protocol/messages.h"
#include "server/observation.h"
#include "storage/heapfile.h"

namespace dbph {
namespace server {

/// \brief Eve: the honest-but-curious service provider.
///
/// Holds only ciphertext: encrypted documents in a heap file plus the
/// per-relation record lists. Executes encrypted exact selects by
/// scanning documents and evaluating the trapdoor — it owns no keys
/// (note that every operation here type-checks against public data only).
///
/// Per the paper's trust model, Eve follows the protocol but records
/// everything she sees in an ObservationLog; the Section 2 experiments
/// mount their inference attacks on that log.
class UntrustedServer {
 public:
  /// Transport entry point: parse request envelope, dispatch, serialize
  /// the response envelope. Never returns malformed bytes.
  Bytes HandleRequest(const Bytes& request);

  // Typed handlers (also usable directly, bypassing the wire layer).

  Status StoreRelation(const core::EncryptedRelation& relation);
  Status DropRelation(const std::string& name);

  /// psi: returns the matching encrypted documents.
  Result<std::vector<swp::EncryptedDocument>> Select(
      const core::EncryptedQuery& query);

  /// Appends already-encrypted documents to a stored relation.
  Status AppendTuples(const std::string& name,
                      const std::vector<swp::EncryptedDocument>& documents);

  /// Deletes every document matching the trapdoor; returns the count.
  /// Deletions leak exactly like selects (the matched identities) and are
  /// recorded in the observation log accordingly.
  Result<size_t> DeleteWhere(const core::EncryptedQuery& query);

  /// Returns every stored document of a relation — the "contract
  /// cancelled" recall path.
  Result<std::vector<swp::EncryptedDocument>> FetchRelation(
      const std::string& name) const;

  /// Persists all stored ciphertext to a file (the server restarting
  /// must not lose Alex's data — it is the only copy). The observation
  /// log is volatile state and is not persisted.
  Status SaveTo(const std::string& path) const;

  /// Restores a server from SaveTo output. Existing state is replaced.
  Status LoadFrom(const std::string& path);

  size_t num_relations() const { return relations_.size(); }
  Result<size_t> RelationSize(const std::string& name) const;

  /// Eve's accumulated view.
  const ObservationLog& observations() const { return log_; }
  ObservationLog* mutable_observations() { return &log_; }

 private:
  struct StoredRelation {
    uint32_t check_length = 4;
    std::vector<storage::RecordId> records;
  };

  protocol::Envelope Dispatch(const protocol::Envelope& request);

  storage::HeapFile heap_;
  std::map<std::string, StoredRelation> relations_;
  ObservationLog log_;
};

}  // namespace server
}  // namespace dbph

#endif  // DBPH_SERVER_UNTRUSTED_SERVER_H_
