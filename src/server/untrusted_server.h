#ifndef DBPH_SERVER_UNTRUSTED_SERVER_H_
#define DBPH_SERVER_UNTRUSTED_SERVER_H_

#include <array>
#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "crypto/merkle.h"
#include "crypto/search_tree.h"
#include "obs/leakage/auditor.h"
#include "obs/metrics.h"
#include "obs/query_trace.h"
#include "dbph/encrypted_relation.h"
#include "dbph/query.h"
#include "protocol/messages.h"
#include "protocol/plan_report.h"
#include "protocol/result_proof.h"
#include "server/observation.h"
#include "server/planner/planner.h"
#include "server/planner/trapdoor_index.h"
#include "server/runtime/thread_pool.h"
#include "server/snapshot.h"
#include "storage/heapfile.h"

namespace dbph {
namespace server {

/// \brief Tuning for the server's parallel batch runtime and planner.
struct ServerRuntimeOptions {
  /// Worker threads for batched selects. 0 = hardware concurrency.
  size_t num_threads = 0;
  /// Shards per relation scan. 0 = 4x the worker count (over-splitting
  /// keeps all cores busy when shards finish unevenly).
  size_t num_shards = 0;
  /// Trapdoor posting-list index: memoize full-scan results so a
  /// repeated trapdoor becomes a posting-list fetch instead of an O(n)
  /// scan. Results and observation-log entries are byte-identical either
  /// way (the planner guarantees it; tests assert it), so this is purely
  /// a performance switch. The index answers only what Eve could
  /// precompute from her own log — see README "Query planning &
  /// indexing".
  bool enable_trapdoor_index = true;
  /// Distinct trapdoors memoized per relation (0 = unlimited). Bounds
  /// index memory and per-append maintenance on a long-running daemon;
  /// at capacity new trapdoors keep scanning while existing entries
  /// keep serving (stop-memoizing, never evict — a performance plateau,
  /// not a correctness change).
  size_t max_indexed_trapdoors = 65536;
  /// Per-append index-maintenance budget, in trapdoor evaluations
  /// (0 = unlimited). An AppendTuples maintains memoized entries until
  /// the budget runs out and evicts the rest, so appends never stall
  /// the dispatch lock on index bookkeeping; bulk-append deployments
  /// should raise this (or the memo shrinks to budget/batch-size
  /// entries).
  size_t max_index_append_evals = 16 * 1024;
  /// Batched scan kernel: route full scans (locked and snapshot paths
  /// alike) through the precomputed-HMAC MatchContext over contiguous
  /// word arenas instead of the per-document scalar matcher. Results,
  /// ResultProofs, and observation-log entries are byte-identical either
  /// way (tests assert it) — purely a performance switch, kept as an
  /// A/B flag for benchmarking and as an escape hatch.
  bool enable_scan_kernel = true;
  /// Result integrity: maintain a per-relation Merkle tree over the
  /// stored ciphertext (in storage order) and attach a
  /// protocol::ResultProof to every select / fetch / delete response, so
  /// a verifying client can detect a server (or a path in between) that
  /// drops, substitutes, reorders, or replays rows. Proofs are a
  /// function of stored state only — both planner access paths produce
  /// byte-identical proofs, like results. Off restores the PR-4 wire
  /// format exactly. See docs/SECURITY.md for what proofs do and do not
  /// guarantee.
  bool enable_integrity = true;
  /// Metrics and per-query tracing (src/obs): per-op counters, stage
  /// latency histograms, dispatch-lock wait times. Hot-path cost is a
  /// few clock reads and relaxed atomic adds per request (bench_e6
  /// --stats measures the overhead; the acceptance bar is <= 2%). Off
  /// skips every clock read; the registry still exists and kStats still
  /// answers, with empty histograms.
  bool enable_metrics = true;
  /// Requests slower than this (parse through serialize, inclusive) are
  /// logged at Warning with their per-stage trace. 0 disables. The log
  /// line carries metadata only — operation, relation name, timings,
  /// result count — never trapdoor or ciphertext bytes (see
  /// docs/OPERATIONS.md "Slow-query log").
  int slow_query_ms = 0;
  /// Online leakage auditor (src/obs/leakage): continuously mirrors the
  /// adversary's view — per-relation tag-frequency sketches, entropy,
  /// result-size distributions, and a live frequency-attack advantage —
  /// and surfaces it via dbph_leakage_* metrics, kLeakageReport, and the
  /// LEAKAGE REPL command. Hot-path cost is one salted SHA-256 of the
  /// trapdoor plus a staged ring append per observed query (bench_e6
  /// --stats measures the ratio; acceptance bar is >= 0.97). Sketches
  /// key on salted digests, never raw trapdoor bytes.
  bool enable_leakage = true;
  /// Space-saving sketch capacity per relation (distinct tag digests
  /// tracked exactly before heavy-hitter approximation kicks in).
  size_t leakage_topk = 128;
  /// Log a redacted Warning (and count an alert) when a relation's
  /// observed frequency-attack advantage reaches this many thousandths.
  uint64_t leakage_alert_millis = 500;
  /// Digest salt override for deterministic tests; empty (production)
  /// draws a fresh random salt per server, so leakage reports cannot be
  /// linked back to captured wire trapdoors across restarts.
  Bytes leakage_salt;
};

/// \brief Eve: the honest-but-curious service provider.
///
/// Holds only ciphertext: encrypted documents in a heap file plus the
/// per-relation record lists. Executes encrypted exact selects by
/// scanning documents and evaluating the trapdoor — it owns no keys
/// (note that every operation here type-checks against public data only).
///
/// Per the paper's trust model, Eve follows the protocol but records
/// everything she sees in an ObservationLog; the Section 2 experiments
/// mount their inference attacks on that log.
class UntrustedServer {
 public:
  UntrustedServer() {
    InitInstruments();
    published_ = std::make_shared<const ServerSnapshot>();
  }
  explicit UntrustedServer(ServerRuntimeOptions runtime_options)
      : runtime_options_(runtime_options) {
    InitInstruments();
    published_ = std::make_shared<const ServerSnapshot>();
  }

  /// Transport entry point: parse request envelope, dispatch, serialize
  /// the response envelope. Never returns malformed bytes. Safe to call
  /// from any number of transport threads concurrently.
  ///
  /// Locking model — single-writer / multi-reader snapshots. Mutating
  /// requests (store / append / delete / drop / attest / flush, and any
  /// batch containing one) serialize on `dispatch_mutex_` for their full
  /// duration, exactly as before; before releasing the lock they publish
  /// an immutable per-relation snapshot (owned document bytes + frozen
  /// trapdoor index + Merkle tree/epoch/attestation) via one atomic
  /// shared_ptr swap. Read-shaped requests (select, all-select batches,
  /// EXPLAIN, fetch, stats, leakage report, ping) pin the published
  /// snapshot with a single acquire load and execute WITHOUT the
  /// dispatch lock — concurrent reads proceed in parallel, each fanning
  /// out internally across the worker pool. A reader re-enters a short
  /// critical section only to append its observation-log entries
  /// (`log_mutex_`) and stage its metrics deltas (`stats_mutex_`).
  ///
  /// Invariants: results and ResultProofs are byte-identical on both
  /// paths (snapshots freeze the proof source with the documents, so a
  /// racing mutation can never splice a stale root under a proof); the
  /// observation log gains exactly one atomic entry per executed query —
  /// an entry reflects its query's pinned snapshot, and a reader racing
  /// a writer may be transcribed after that writer's entry (the matched
  /// record ids identify the snapshot it read).
  Bytes HandleRequest(const Bytes& request);

  /// As above, with the caller's identity for the debug-only
  /// exclusive-mutation-dispatcher assertion (see
  /// BindExclusiveDispatcher).
  Bytes HandleRequest(const Bytes& request, const void* dispatcher);

  /// Debug contract for the network deployment: after binding, every
  /// MUTATING HandleRequest must come from `dispatcher` (NetServer binds
  /// itself on Start); a stray direct mutator trips an assert in debug
  /// builds. Read-shaped requests are exempt — they take no exclusive
  /// resource and may come from any thread (NetServer's read workers,
  /// the metrics responder, tests). Unbound servers accept any caller.
  void BindExclusiveDispatcher(const void* dispatcher) {
    bound_dispatcher_.store(dispatcher, std::memory_order_release);
  }

  /// Releases the binding iff it still belongs to `dispatcher`. A
  /// stopping NetServer must not blindly store nullptr: with a Stop/Start
  /// race a new server may already have bound itself, and clobbering its
  /// binding would disarm (or misfire) the assert for the wrong party.
  void UnbindExclusiveDispatcher(const void* dispatcher) {
    const void* expected = dispatcher;
    bound_dispatcher_.compare_exchange_strong(expected, nullptr,
                                              std::memory_order_acq_rel);
  }

  // Typed handlers (also usable directly, bypassing the wire layer).
  // Mutators take the dispatch lock and publish a fresh snapshot before
  // returning; reads run against the published snapshot, lock-free.

  Status StoreRelation(const core::EncryptedRelation& relation);
  Status DropRelation(const std::string& name);

  /// psi: returns the matching encrypted documents. Routed through the
  /// snapshot select pipeline (a one-query SelectBatch): the planner
  /// picks the trapdoor-index path when this exact trapdoor is memoized,
  /// the sharded full scan otherwise; results and the observation entry
  /// are byte-identical either way.
  Result<std::vector<swp::EncryptedDocument>> Select(
      const core::EncryptedQuery& query);

  /// Batched psi against one pinned snapshot: index-path queries are
  /// answered from frozen posting lists; the rest run as sharded scan
  /// waves over the worker pool. results[i] corresponds to queries[i]
  /// and is byte-identical (documents, order) to a sequential
  /// Select(queries[i]) at the same state regardless of the access path
  /// chosen; the observation log gets exactly one entry per query, in
  /// query order, just as if the selects had arrived one by one.
  std::vector<Result<std::vector<swp::EncryptedDocument>>> SelectBatch(
      const std::vector<core::EncryptedQuery>& queries);

  /// EXPLAIN: how Select(query) would execute right now — access path,
  /// scan fan-out, posting sizes — without executing anything. Explain
  /// is not a query observation: Eve receives the trapdoor bytes but
  /// computes no matches, so the report reveals at most what the
  /// corresponding Select would (and the plan itself is a function of
  /// Eve's own state). Served on the wire as kExplain/kExplainResult.
  Result<protocol::PlanReport> Explain(const core::EncryptedQuery& query);

  /// Appends already-encrypted documents to a stored relation.
  Status AppendTuples(const std::string& name,
                      const std::vector<swp::EncryptedDocument>& documents);

  /// Deletes every document matching the trapdoor; returns the count.
  /// Deletions leak exactly like selects (the matched identities) and are
  /// recorded in the observation log accordingly.
  Result<size_t> DeleteWhere(const core::EncryptedQuery& query);

  /// Stores the data owner's signature over (relation, epoch, root) —
  /// the kAttestRoot handler. Eve holds no keys, so she can only accept
  /// and echo the signature; she verifies nothing beyond "the claimed
  /// (epoch, root) is my current state" (a stale attestation is the
  /// client's bug, not hers to repair). Attested roots are mutations for
  /// durability purposes: WAL-logged and persisted, so recovery restores
  /// them alongside the ciphertext they bless.
  Status AttestRoot(const std::string& name, uint64_t epoch,
                    const crypto::MerkleTree::Hash& root,
                    const Bytes& signature);

  /// Returns every stored document of a relation — the "contract
  /// cancelled" recall path. Reads the published snapshot.
  Result<std::vector<swp::EncryptedDocument>> FetchRelation(
      const std::string& name) const;

  /// Persists all stored ciphertext to a file (the server restarting
  /// must not lose Alex's data — it is the only copy). The write is
  /// atomic: temp file + fsync + rename, so a crash mid-save can never
  /// destroy a previous snapshot. The observation log is volatile state
  /// and is not persisted. Takes the dispatch lock (a quiescent image).
  Status SaveTo(const std::string& path) const;

  /// Restores a server from SaveTo output. Existing state is replaced.
  Status LoadFrom(const std::string& path);

  /// The SaveTo image as bytes, for the durability layer (which wraps it
  /// in its own checkpoint header and already holds the dispatch lock
  /// via WithDispatchLock when it calls this). Caller-locked: must run
  /// under the dispatch lock or on an otherwise-quiescent server.
  Result<Bytes> SerializeState() const;

  /// Restores from a SerializeState image. Parses fully before mutating,
  /// so a corrupt image cannot leave the server half-loaded. Clears the
  /// observation log (re-stores during a restore are not observations).
  Status RestoreState(const Bytes& data);

  // -------- durability hooks (installed by server::DurableStore) --------

  /// Called under the dispatch lock with every mutating envelope
  /// (kStoreRelation / kDropRelation / kAppendTuples / kDeleteWhere whose
  /// payload parsed) *before* it is applied; a failing hook fails the
  /// request with kUnavailable and nothing is applied. Because the hook
  /// runs inside the single-writer dispatch, WAL order always equals
  /// apply order, even with racing transports.
  using MutationHook = std::function<Status(const protocol::Envelope&)>;
  void SetMutationHook(MutationHook hook) {
    // Installed/removed under the dispatch lock so racing dispatchers
    // never observe a half-assigned std::function.
    std::lock_guard<std::mutex> lock(dispatch_mutex_);
    mutation_hook_ = std::move(hook);
  }

  /// Serves kFlush: force a durability point. Without a hook the server
  /// is memory-only and kFlush trivially succeeds (there is nothing to
  /// make durable beyond the process).
  using FlushHook = std::function<Status()>;
  void SetFlushHook(FlushHook hook) {
    std::lock_guard<std::mutex> lock(dispatch_mutex_);
    flush_hook_ = std::move(hook);
  }

  /// Runs `fn` while holding the dispatch lock — the same serialization
  /// point as every mutation — so `fn` observes a quiescent state with no
  /// mutation half-applied. (Snapshot readers may still be executing
  /// against previously published state; they touch nothing `fn` can
  /// mutate.) The checkpointer snapshots through this.
  Status WithDispatchLock(const std::function<Status()>& fn) {
    std::lock_guard<std::mutex> lock(dispatch_mutex_);
    return fn();
  }

  size_t num_relations() const { return PinSnapshot()->relations.size(); }
  Result<size_t> RelationSize(const std::string& name) const;

  /// Eve's accumulated view. Reading the per-event transcripts is only
  /// race-free on a quiescent server (tests and the Section 2 games
  /// quiesce first); live appends serialize on an internal mutex.
  const ObservationLog& observations() const { return log_; }
  ObservationLog* mutable_observations() { return &log_; }

  // ------------------------- observability (src/obs) -------------------

  /// The server's instrument registry. Components sharing the process
  /// (net::NetServer, server::DurableStore) register their instruments
  /// here at startup, so one kStats / Prometheus snapshot covers every
  /// layer. Registration locks; updates are lock-free.
  obs::MetricsRegistry* metrics() { return &metrics_; }

  /// Whether timed instrumentation is on (ServerRuntimeOptions
  /// enable_metrics). Co-resident components gate their clock reads on
  /// this, matching the server's own hot path.
  bool metrics_enabled() const { return runtime_options_.enable_metrics; }

  /// A full snapshot with derived gauges (relation count, trapdoor-index
  /// totals) refreshed first. Lock-free against the dispatch lock: the
  /// derived gauges come from the published snapshot, so a scrape never
  /// queues behind a mutation (the metrics HTTP responder and benches
  /// call this from their own threads).
  obs::RegistrySnapshot CollectStats();

  /// The live leakage auditor, or null when ServerRuntimeOptions
  /// enable_leakage is off. Tests and benches read reports through this
  /// without a wire round trip; the kLeakageReport handler is the wire
  /// surface.
  obs::leakage::LeakageAuditor* leakage_auditor() { return auditor_.get(); }

 private:
  /// How far a relation's published snapshot lags its live state, and
  /// therefore how much work republishing costs. Levels escalate and
  /// only PublishDirtyLocked resets them.
  enum class SnapshotDirty : uint8_t {
    kNone = 0,    ///< published snapshot is current
    kMeta = 1,    ///< index/epoch/attestation changed; documents did not
    kAppend = 2,  ///< documents appended (pending_append holds them)
    kFull = 3,    ///< documents changed arbitrarily; rebuild from heap
  };

  struct StoredRelation {
    uint32_t check_length = 4;
    std::vector<storage::RecordId> records;
    /// Trapdoor → posting-list memo for this relation. Volatile cache:
    /// dies with the relation (Drop), starts cold after RestoreState /
    /// recovery (deterministic rebuild as queries repeat), and is
    /// maintained incrementally by AppendTuples / DeleteWhere under the
    /// dispatch lock. Never consulted when the runtime option disables
    /// the index. Snapshot readers see a frozen copy and consult it via
    /// Peek only.
    planner::TrapdoorIndex index;

    // ---- result-integrity state (maintained only with enable_integrity;
    // all under the dispatch lock, like everything else here) ----

    /// Merkle tree over the serialized stored documents in storage
    /// order. Deterministic from the ciphertext, so save/load and WAL
    /// replay rebuild the identical root.
    crypto::MerkleTree tree;
    /// Mutation counter: 1 at StoreRelation, +1 per append / delete.
    uint64_t epoch = 0;
    /// The data owner's HMAC over (name, attested_epoch, root) — empty
    /// until deposited via kAttestRoot; returned in proofs only while
    /// attested_epoch == epoch (a signature over an older state must
    /// not bless the current one).
    uint64_t attested_epoch = 0;
    Bytes root_signature;
    /// The authenticated search structure: a Merkle tree over sorted
    /// (trapdoor-tag digest → posting-list digest) entries, the
    /// owner-computed commitment to what each query SHOULD return.
    /// Populated from the search-entry section the integrity-tracking
    /// client appends to kStoreRelation / kAppendTuples payloads;
    /// empty (vacuously consistent) when the client sent none.
    /// Maintained under the dispatch lock in lockstep with `tree` —
    /// the two share `epoch`.
    crypto::SearchTree search;
    /// The owner's HMAC over (name, attested_epoch, search root) under
    /// the "dbph-search-root-v1" domain; deposited by the extended
    /// kAttestRoot alongside root_signature, same staleness rule.
    Bytes search_signature;
    /// rid.Pack() → leaf index, so the proof builder maps planner
    /// matches (which carry record ids) to tree positions in O(1)
    /// instead of scanning `records` per select.
    std::unordered_map<uint64_t, uint64_t> position_of;
    /// Total word slots across all stored documents — the predicted PRF
    /// evaluation count a full scan reports (EXPLAIN match_evals).
    /// Maintained by store/append/delete alongside `records`.
    uint64_t word_slots = 0;

    // ---- snapshot publication state (under the dispatch lock) ----

    /// The last published frozen view of this relation (what readers
    /// currently see), and how stale it is.
    std::shared_ptr<const RelationSnapshot> published;
    SnapshotDirty dirty = SnapshotDirty::kFull;
    /// Documents appended since the last publish (owned serialized
    /// bytes), so an append republishes O(appended) instead of O(n).
    std::vector<SnapshotDoc> pending_append;
    /// Stamp of the last document-state change (drawn from the
    /// server-wide counter, so a drop + re-store never reuses a value).
    uint64_t doc_generation = 0;
  };

  /// One select's full outcome on the locked path: the documents plus
  /// their leaf positions (positions empty when integrity is off) and
  /// the relation they came from (null when resolution failed).
  struct SelectOutcome {
    Result<std::vector<swp::EncryptedDocument>> docs;
    std::vector<uint64_t> positions;
    const StoredRelation* stored = nullptr;
    /// The queried trapdoor's search-tree tag (set when integrity is
    /// on), so the response builder can attach a CompletenessProof.
    crypto::MerkleTree::Hash tag{};
    bool has_tag = false;

    SelectOutcome() : docs(Status::OK()) {}
  };

  /// One select's outcome on the snapshot read path; `rel` (borrowed
  /// from the pinned snapshot, which the caller keeps alive) is the
  /// proof source.
  struct SnapshotSelectOutcome {
    Result<std::vector<swp::EncryptedDocument>> docs;
    std::vector<uint64_t> positions;
    const RelationSnapshot* rel = nullptr;
    /// See SelectOutcome::tag.
    crypto::MerkleTree::Hash tag{};
    bool has_tag = false;

    SnapshotSelectOutcome() : docs(Status::OK()) {}
  };

  /// One completed request's metric deltas, staged before they reach the
  /// registry. The instruments live in scattered heap allocations, and a
  /// request's working set (Merkle proof build, decrypt-sized scans)
  /// evicts them between requests — updating ~13 of them inline costs a
  /// cold cache miss each, several times the instruments' instruction
  /// cost. So the hot path appends one plain 56-byte entry to a small
  /// ring instead, and the ring folds into the registry in batches
  /// (cache-hot, amortized) and on every read path. The ring is guarded
  /// by stats_mutex_ (locked and snapshot paths both stage here);
  /// readers of the atomic instruments stay lock-free.
  struct PendingRequestStat {
    enum : uint8_t {
      kIsError = 1 << 0,
      kIsSelect = 1 << 1,
      kRanPipeline = 1 << 2,
      kUsedIndex = 1 << 3,
      kUsedScan = 1 << 4,
      kBuiltProof = 1 << 5,
    };
    uint32_t parse_micros = 0;
    uint32_t lock_wait_micros = 0;
    uint32_t handle_micros = 0;
    uint32_t serialize_micros = 0;
    uint32_t total_micros = 0;
    uint32_t plan_micros = 0;
    uint32_t execute_index_micros = 0;
    uint32_t execute_scan_micros = 0;
    uint32_t proof_micros = 0;
    uint32_t result_size = 0;
    uint32_t index_queries = 0;
    uint32_t scan_queries = 0;
    uint32_t match_evals = 0;
    uint8_t op = 0;
    uint8_t flags = 0;
  };

  /// A reader's private stage trace + staged metric deltas. The locked
  /// path keeps these as members (trace_/cur_, valid under the dispatch
  /// lock); each snapshot read carries its own on the stack.
  struct ReadScratch {
    obs::QueryTrace trace;
    PendingRequestStat cur;
  };

  /// The locked select pipeline: plans/executes against live storage,
  /// logs observations, and reports positions for proof building. Only
  /// reachable under the dispatch lock (select legs of mixed batches).
  std::vector<SelectOutcome> SelectBatchInternal(
      const std::vector<core::EncryptedQuery>& queries);

  /// DeleteWhere body; when `removed_out` is non-null it receives the
  /// pre-delete (leaf position, serialized document) manifest the client
  /// verifies against its own tree.
  Result<size_t> DeleteWhereInternal(
      const core::EncryptedQuery& query,
      std::vector<std::pair<uint64_t, Bytes>>* removed_out);

  // Locked bodies of the typed mutators (caller holds dispatch_mutex_);
  // the public wrappers lock, delegate, and publish.
  /// `search_entries` (optional) is the owner-computed search-entry
  /// section riding on the store payload — the relation's full
  /// (tag → positions) map; null/absent leaves the search tree empty.
  Status StoreRelationLocked(
      const core::EncryptedRelation& relation,
      const std::vector<crypto::SearchTree::Entry>* search_entries = nullptr);
  Status DropRelationLocked(const std::string& name);
  /// `search_delta` (optional) holds the appended rows' (tag →
  /// positions) contributions; applied all-or-nothing BEFORE the
  /// documents are inserted, so a malformed delta rejects the whole
  /// append instead of leaving the trees torn.
  Status AppendTuplesLocked(
      const std::string& name,
      const std::vector<swp::EncryptedDocument>& documents,
      const std::vector<crypto::SearchTree::Entry>* search_delta = nullptr);
  /// `search_root`/`search_signature` (optional, both or neither) extend
  /// the attestation to the search tree; an old-style attestation
  /// without them clears any previously deposited search signature.
  Status AttestRootLocked(const std::string& name, uint64_t epoch,
                          const crypto::MerkleTree::Hash& root,
                          const Bytes& signature,
                          const crypto::MerkleTree::Hash* search_root = nullptr,
                          const Bytes* search_signature = nullptr);
  Status RestoreStateLocked(const Bytes& data);
  /// Reads a relation's documents straight from the heap (used by
  /// SerializeState, which runs caller-locked and must not detour
  /// through the published snapshot).
  Result<std::vector<swp::EncryptedDocument>> FetchRelationLocked(
      const std::string& name) const;

  /// The proof for a result set of `positions` against `stored`'s
  /// current tree/epoch. Positions must be sorted (storage order — the
  /// pipeline's contract already guarantees it).
  protocol::ResultProof BuildProof(const StoredRelation& stored,
                                   std::vector<uint64_t> positions) const;

  /// Renders one locked-path select outcome as its wire envelope —
  /// kSelectResult with the proof attached (integrity on), or a kError.
  protocol::Envelope MakeSelectResponse(SelectOutcome* outcome);

  protocol::Envelope Dispatch(const protocol::Envelope& request);
  protocol::Envelope DispatchBatch(const protocol::Envelope& request);

  // ---------------- snapshot read path (no dispatch lock) ----------------

  std::shared_ptr<const ServerSnapshot> PinSnapshot() const {
    std::lock_guard<std::mutex> lock(publish_mutex_);
    return published_;
  }

  /// Serves one read-shaped request against the pinned snapshot; the
  /// read-path twin of the locked HandleRequest tail (timing, metrics
  /// staging, slow-query log) with per-request scratch instead of the
  /// lock-guarded members.
  Bytes HandleReadRequest(const protocol::Envelope& envelope,
                          uint64_t parse_micros);

  /// Dispatch for snapshot-served types: kSelect, all-select batches,
  /// kExplain, kFetchRelation, kStats, kLeakageReport, kPing.
  protocol::Envelope DispatchRead(const protocol::Envelope& request,
                                  const ServerSnapshot& snap,
                                  ReadScratch* scratch);

  /// EXPLAIN against a pinned snapshot: mirrors planner::PlanSelect with
  /// the frozen index's stats-free Peek (EXPLAIN never counts toward
  /// hit/miss stats on either path).
  Result<protocol::PlanReport> ExplainFromSnapshot(
      const ServerSnapshot& snap, const core::EncryptedQuery& query);

  /// The snapshot select pipeline: plans with the frozen index (Peek),
  /// fetches postings or runs sharded scans over the frozen documents,
  /// feeds the auditor, and appends one observation-log entry per query
  /// (in query order, atomically under log_mutex_). Mirrors
  /// SelectBatchInternal stage for stage; `scratch` null = untimed.
  std::vector<SnapshotSelectOutcome> SnapshotSelectBatch(
      const ServerSnapshot& snap,
      const std::vector<core::EncryptedQuery>& queries, ReadScratch* scratch);

  /// Read-path twin of MakeSelectResponse: proof from the pinned
  /// relation snapshot's frozen tree/epoch/attestation.
  protocol::Envelope MakeSnapshotSelectResponse(SnapshotSelectOutcome* outcome,
                                                ReadScratch* scratch);

  /// After a snapshot scan missed the frozen index, best-effort memoize
  /// the scan result into the live index: try-lock the dispatch mutex
  /// and, if the live document state is still the generation the
  /// snapshot was pinned at (doc_generation match — index/attestation
  /// churn in between is harmless), memoize + republish. Skipped on
  /// contention or staleness — a pure performance loss, never a
  /// correctness one.
  void TryMemoizeFromSnapshot(const std::string& relation,
                              const RelationSnapshot* pinned,
                              const Bytes& trapdoor_bytes,
                              const swp::Trapdoor& trapdoor,
                              const std::vector<uint64_t>& postings);

  // ---------------- snapshot publication (dispatch lock held) -----------

  /// Escalates a relation's dirty level (kAppend does not downgrade
  /// kFull, etc.) and flags the server snapshot stale.
  void MarkDirtyLocked(StoredRelation* stored, SnapshotDirty level);

  /// Rebuilds `stored`'s frozen view at the recorded dirty level —
  /// sharing chunks/tree with the previous snapshot where unchanged —
  /// then swaps a fresh ServerSnapshot. No-op when nothing is stale.
  void PublishDirtyLocked();
  std::shared_ptr<const RelationSnapshot> BuildRelationSnapshotLocked(
      const StoredRelation& stored) const;

  /// The planner's borrowed view of one stored relation (valid under the
  /// dispatch lock only). Null index when the runtime option is off.
  planner::ExecutionContext ContextFor(StoredRelation* stored);

  /// Write-ahead point for a mutating envelope: hands it to the mutation
  /// hook (if any) before the typed handler applies it. kUnavailable on
  /// hook failure — the mutation must not be applied.
  Status LogMutation(const protocol::Envelope& request);

  // Observation-log appends serialize on log_mutex_ (mutators under the
  // dispatch lock race snapshot readers here); every write goes through
  // these.
  void RecordStoreObservation(const std::string& relation,
                              size_t num_documents, size_t ciphertext_bytes);
  void RecordQueryObservation(QueryObservation observation);

  /// Cached instrument pointers (stable for the registry's lifetime), so
  /// the hot path never touches the registry map or its mutex.
  struct Instruments {
    obs::Counter* requests = nullptr;
    obs::Counter* errors = nullptr;
    obs::Counter* slow_queries = nullptr;
    obs::Counter* select_scan = nullptr;
    obs::Counter* select_index = nullptr;
    obs::Counter* scan_match_evals = nullptr;
    obs::Counter* attestations = nullptr;
    obs::Histogram* parse = nullptr;
    obs::Histogram* lock_wait = nullptr;
    obs::Histogram* handle = nullptr;
    obs::Histogram* plan = nullptr;
    obs::Histogram* execute_scan = nullptr;
    obs::Histogram* execute_index = nullptr;
    obs::Histogram* proof_build = nullptr;
    obs::Histogram* serialize = nullptr;
    obs::Histogram* select_total = nullptr;
    obs::Histogram* select_result_size = nullptr;
    obs::Gauge* relations = nullptr;
    obs::Gauge* index_trapdoors = nullptr;
    obs::Gauge* index_postings = nullptr;
    obs::Gauge* index_hits = nullptr;
    obs::Gauge* index_misses = nullptr;
    obs::Gauge* index_memoized = nullptr;
    obs::Gauge* index_append_evals = nullptr;
    obs::Gauge* index_invalidations = nullptr;
    obs::Gauge* index_at_capacity = nullptr;
  };
  void InitInstruments();

  /// Per-op counter for a request envelope type (registered lazily; the
  /// name is a fixed function of the type byte, never of payload).
  /// Caller holds stats_mutex_ (the lazy cache array is guarded by it).
  obs::Counter* OpCounter(protocol::MessageType type);

  static constexpr size_t kPendingRingSize = 128;

  /// Chunk budget before an append-publish coalesces a relation's
  /// snapshot back into one chunk (bounds PositionOf's probe count).
  static constexpr size_t kMaxSnapshotChunks = 16;

  /// Completes `cur` from `trace`, stages it as a ring entry (under
  /// stats_mutex_, folding the ring when it fills), and emits the
  /// slow-query log line. Callable from any request thread.
  void RecordRequestMetrics(const obs::QueryTrace& trace,
                            PendingRequestStat* cur,
                            protocol::MessageType request_type,
                            protocol::MessageType response_type,
                            uint64_t handle_micros);

  /// Folds every staged ring entry into the registry instruments.
  /// Caller holds stats_mutex_.
  void FlushPendingStatsLocked();

  /// Recomputes the derived gauges (relation count, trapdoor-index
  /// aggregates) from the live relation map and folds staged request
  /// stats. Caller holds the dispatch lock (the in-dispatch kStats
  /// handler); the lock-free twin below serves everything else.
  void RefreshGaugesLocked();

  /// As above, but derived from a pinned snapshot — the lock-free stats
  /// path (kStats reads, CollectStats/scrape). Mutations republish
  /// before acknowledging, so at any quiescent point the two agree.
  void RefreshGaugesFromSnapshot(const ServerSnapshot& snap);

  /// Shared tail of both gauge refreshers: index totals + auditor.
  void SetIndexGauges(const planner::TrapdoorIndex::Stats& totals,
                      int64_t trapdoors, int64_t postings,
                      int64_t at_capacity);

  /// Lazily started worker pool (no threads until the first scan);
  /// concurrent readers race here, so initialization is call_once.
  runtime::ThreadPool* pool();
  size_t ShardCount();

  storage::HeapFile heap_;
  std::map<std::string, StoredRelation> relations_;
  ObservationLog log_;
  /// Eve's-view leakage statistics (null when disabled). Thread-safe
  /// behind its own internal mutex; fed by the locked and snapshot
  /// select/delete pipelines alike.
  std::unique_ptr<obs::leakage::LeakageAuditor> auditor_;

  ServerRuntimeOptions runtime_options_;
  std::unique_ptr<runtime::ThreadPool> pool_;
  std::once_flag pool_once_;
  /// Serializes mutations (single-writer); snapshot reads never take it
  /// (their parallelism is the point). mutable so const state readers
  /// (SaveTo) can quiesce.
  mutable std::mutex dispatch_mutex_;
  /// Serializes observation-log appends: mutators (under the dispatch
  /// lock) race snapshot readers here. Lock order: dispatch_mutex_ →
  /// log_mutex_, never the reverse.
  std::mutex log_mutex_;
  /// Guards the pending-stats ring (and the lazy op-counter cache):
  /// locked requests and snapshot readers both stage entries.
  std::mutex stats_mutex_;
  /// The published immutable state the read path executes against.
  /// Replaced under the dispatch lock, pinned (shared_ptr copy) by any
  /// reader. publish_mutex_ guards ONLY the pointer swap/copy — never
  /// held while building, executing against, or destroying a snapshot —
  /// so readers pay one uncontended lock per request, not serialization.
  /// (Not std::atomic<shared_ptr>: libstdc++'s _Sp_atomic unlocks its
  /// embedded spinlock with relaxed order on the load path, which TSan —
  /// and a strict memory-model reading — flags as racing the next store.)
  mutable std::mutex publish_mutex_;
  std::shared_ptr<const ServerSnapshot> published_;
  /// Set while any relation's published snapshot lags its live state.
  bool snapshot_stale_ = true;
  /// Source of doc_generation stamps (monotone across all relations).
  uint64_t doc_generation_counter_ = 0;
  /// Frozen-index consultations by snapshot readers (Peek is stats-free
  /// so the frozen copy stays immutable; the gauges add these to the
  /// live index's own counts).
  std::atomic<uint64_t> reader_index_hits_{0};
  std::atomic<uint64_t> reader_index_misses_{0};
  /// Debug-only: the one transport allowed to dispatch MUTATIONS, when
  /// bound.
  std::atomic<const void*> bound_dispatcher_{nullptr};
  MutationHook mutation_hook_;
  FlushHook flush_hook_;

  /// Process-wide instrument registry (see metrics()). The maps inside
  /// grow at registration only; instrument updates are lock-free.
  obs::MetricsRegistry metrics_;
  Instruments ins_;
  /// Per-op-type counters, registered on first use of each type and
  /// looked up by the raw type byte (no map walk in the fold loop).
  /// Guarded by stats_mutex_ with the ring.
  std::array<obs::Counter*, 256> op_counters_{};
  /// The CURRENT locked request's stage trace. Valid under the dispatch
  /// lock (exactly one locked request is live at a time); the select
  /// pipeline and proof builder accumulate into it, HandleRequest folds
  /// it into the histograms when the request completes. Snapshot readers
  /// never touch it — they carry a ReadScratch.
  obs::QueryTrace trace_;
  /// The CURRENT locked request's staged metric deltas (same contract
  /// as trace_): the select pipeline and proof builder add their
  /// per-path spans here, RecordRequestMetrics completes the entry and
  /// appends it to pending_.
  PendingRequestStat cur_;
  /// Completed-but-unfolded request entries; folded into the registry by
  /// FlushPendingStatsLocked (ring full, or any stats read). Guarded by
  /// stats_mutex_.
  std::array<PendingRequestStat, kPendingRingSize> pending_{};
  size_t pending_count_ = 0;
};

}  // namespace server
}  // namespace dbph

#endif  // DBPH_SERVER_UNTRUSTED_SERVER_H_
