#ifndef DBPH_SERVER_DURABLE_STORE_H_
#define DBPH_SERVER_DURABLE_STORE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/result.h"
#include "obs/metrics.h"
#include "protocol/messages.h"
#include "storage/wal.h"

namespace dbph {
namespace server {

class UntrustedServer;

struct DurableStoreOptions {
  /// fsync policy for WAL appends (see storage::WalSyncMode). kAlways:
  /// an acknowledged mutation survives any crash. kBatch: group commit —
  /// mutations are acknowledged before fsync and become durable at the
  /// next sync tick, kFlush, or checkpoint; a crash may lose the
  /// unsynced suffix but never corrupts the recoverable prefix.
  storage::WalSyncMode sync_mode = storage::WalSyncMode::kAlways;
  /// The background thread checkpoints once the WAL exceeds this many
  /// bytes. 0 = size never triggers a checkpoint.
  size_t checkpoint_wal_bytes = 8 * 1024 * 1024;
  /// The background thread also checkpoints at this cadence when the WAL
  /// is non-empty. 0 = time never triggers a checkpoint.
  int checkpoint_interval_ms = 0;
  /// Group-commit cadence for kBatch mode (and the background thread's
  /// wake period). Must be > 0 when the background thread runs.
  int sync_interval_ms = 50;
  /// Start the background checkpointer/group-commit thread in Open().
  /// Tests drive Checkpoint()/Flush() by hand with this off.
  bool background_thread = true;
};

/// \brief Continuous durability for an UntrustedServer: write-ahead log +
/// atomic snapshot checkpoints in one directory.
///
///   <dir>/snapshot.dbph   checkpoint header + SerializeState image
///   <dir>/wal.log         CRC-guarded mutation log since that snapshot
///
/// Every mutating envelope (kStoreRelation / kDropRelation /
/// kAppendTuples / kDeleteWhere / kAttestRoot — arriving alone or inside
/// a batch) is
/// appended to the WAL *before* the server applies it, via the server's
/// mutation hook, which runs inside the single-writer dispatch lock — so
/// log order always equals apply order, whatever raced on the wire.
/// Replay re-dispatches the logged envelopes through HandleRequest:
/// every handler is deterministic, so recovery rebuilds byte-identical
/// state (heap layout and record ids included).
///
/// Records carry LSNs and the snapshot header stores the last LSN it
/// covers; replay skips records at or below it. That closes the crash
/// window between snapshot rename and WAL trim — a stale log replayed
/// over a fresh snapshot double-applies nothing.
///
/// Checkpoints run under the server's dispatch lock (a quiescent state,
/// no request half-applied): serialize state, write the snapshot
/// atomically (temp + fsync + rename), then reset the WAL.
///
/// Leakage: see README "Durability" — the log is ciphertext +
/// trapdoors, i.e. exactly Eve's per-mutation view, now on disk.
class DurableStore {
 public:
  /// `server` must outlive this object. Nothing touches disk until
  /// Open().
  DurableStore(UntrustedServer* server, std::string dir,
               DurableStoreOptions options = {});

  /// Destroying without Close() is crash-equivalent: hooks are removed
  /// and file descriptors close, but no final checkpoint or sync runs.
  ~DurableStore();

  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  /// Recovery + go-live: creates the directory if needed, loads the
  /// snapshot (if any), replays the WAL's valid suffix (truncating a
  /// torn tail), installs the durability hooks on the server, and starts
  /// the background thread (per options). The server must be otherwise
  /// idle until Open returns.
  Status Open();

  /// Graceful shutdown: stops the background thread, takes a final
  /// checkpoint (leaving an empty WAL), uninstalls the hooks. Idempotent.
  Status Close();

  /// Forces a durability point: fsync the WAL. The kFlush handler.
  Status Flush();

  /// Atomic snapshot of the current state + WAL trim, serialized with
  /// request dispatch. Safe to call concurrently with traffic.
  Status Checkpoint();

  std::string snapshot_path() const { return dir_ + "/snapshot.dbph"; }
  std::string wal_path() const { return dir_ + "/wal.log"; }

  struct Stats {
    uint64_t wal_records = 0;      ///< records appended since Open
    uint64_t wal_bytes = 0;        ///< current WAL file size
    uint64_t checkpoints = 0;      ///< checkpoints taken since Open
    uint64_t group_syncs = 0;      ///< background fsyncs (kBatch mode)
    uint64_t replayed_records = 0; ///< records replayed by Open
    bool recovered_torn_tail = false;  ///< Open dropped a torn tail
  };
  Stats stats() const;

 private:
  /// The mutation hook body: assign an LSN, frame, append, maybe fsync.
  /// Runs under the server's dispatch lock.
  Status AppendMutation(const protocol::Envelope& envelope);
  /// Checkpoint body; caller holds the dispatch lock.
  Status CheckpointLocked();
  void BackgroundLoop();

  UntrustedServer* server_;
  std::string dir_;
  DurableStoreOptions options_;

  /// Durability instruments, registered in Open() against the server's
  /// registry (owned there). Clock reads gate on the server's
  /// enable_metrics, same as the dispatch path.
  struct WalInstruments {
    obs::Histogram* fsync_latency = nullptr;       ///< dbph_wal_fsync_seconds
    obs::Histogram* checkpoint_latency = nullptr;  ///< dbph_checkpoint_seconds
    obs::Histogram* group_batch = nullptr;  ///< dbph_wal_group_commit_batch_size
    obs::Counter* appends = nullptr;        ///< dbph_wal_append_records_total
    obs::Counter* checkpoints = nullptr;    ///< dbph_checkpoints_total
    obs::Counter* group_syncs = nullptr;    ///< dbph_wal_group_syncs_total
    obs::Counter* replayed = nullptr;       ///< dbph_wal_replayed_records_total
    obs::Gauge* wal_bytes = nullptr;        ///< dbph_wal_bytes
  };
  WalInstruments ins_;
  /// Appends since the last group-commit fsync; under wal_mutex_.
  uint64_t group_pending_records_ = 0;

  /// Guards wal_ and next_lsn_ against the background thread; acquired
  /// after the dispatch lock where both are held.
  mutable std::mutex wal_mutex_;
  std::unique_ptr<storage::WriteAheadLog> wal_;
  /// LSN the next mutation gets; LSNs ≤ next_lsn_ - 1 are applied.
  uint64_t next_lsn_ = 1;
  bool open_ = false;

  std::thread background_;
  std::mutex background_mutex_;
  std::condition_variable background_cv_;
  bool stop_background_ = false;

  std::atomic<uint64_t> wal_records_{0};
  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<uint64_t> group_syncs_{0};
  std::atomic<uint64_t> replayed_records_{0};
  std::atomic<bool> recovered_torn_tail_{false};
};

}  // namespace server
}  // namespace dbph

#endif  // DBPH_SERVER_DURABLE_STORE_H_
