#ifndef DBPH_SERVER_SNAPSHOT_H_
#define DBPH_SERVER_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/merkle.h"
#include "crypto/search_tree.h"
#include "server/planner/trapdoor_index.h"
#include "server/runtime/thread_pool.h"
#include "swp/match_kernel.h"
#include "swp/search.h"

namespace dbph {
namespace server {

/// \brief Immutable published state for the snapshot (MVCC-style) read
/// path: mutations run under the server's single-writer dispatch lock
/// and, before acknowledging, publish a frozen copy of each touched
/// relation via one atomic shared_ptr swap. Readers pin the current
/// ServerSnapshot with a single acquire load and execute entirely
/// against it — no dispatch lock, no borrowed storage views — so a
/// racing append/delete can neither tear a result set nor splice a
/// stale Merkle root under a proof.
///
/// Everything here is deep-frozen at publish time: document bytes are
/// OWNED copies (the heap file compacts pages in place, so borrowing
/// record ids across a mutation is unsound), the trapdoor index is a
/// value copy consulted only through its stats-free Peek, and the
/// Merkle tree/epoch/attestation triple is the exact proof source the
/// single-writer path would have used at the same state. Results and
/// ResultProofs are byte-identical to the locked path by construction:
/// same serialized bytes, same parse, same scan semantics, same tree.

/// One stored ciphertext document frozen at publish time: its heap
/// identity (what Eve correlates across results) plus the serialized
/// bytes as stored — exactly what heap.Get would have returned.
struct SnapshotDoc {
  uint64_t rid_packed = 0;
  Bytes bytes;
};

/// A contiguous run of documents in storage order. Chunks are shared
/// between snapshot generations so an append publishes O(appended)
/// new state (old chunks + one new chunk) instead of recopying the
/// relation; deletes and stores rebuild a single chunk (they are O(n)
/// operations already).
struct SnapshotChunk {
  std::vector<SnapshotDoc> docs;
  /// rid.Pack() -> index into docs; built once by Seal().
  std::unordered_map<uint64_t, uint32_t> pos_in_chunk;

  // ---- scan-kernel arena (built once by Seal(); see docs/ARCHITECTURE
  // "The hot-scan kernel"). Every word ciphertext of every well-formed
  // document in this chunk, copied into ONE contiguous buffer so a
  // trapdoor scan streams linearly through word bytes instead of
  // pointer-chasing per-document heap allocations. ----

  /// All word ciphertexts back to back, in (document, slot) order.
  Bytes word_arena;
  /// One ref per word slot, offsets into word_arena. Document i's slots
  /// are the contiguous run word_refs[word_first[i] .. word_first[i+1]).
  std::vector<swp::WordRef> word_refs;
  /// Prefix offsets into word_refs; size docs.size() + 1.
  std::vector<uint32_t> word_first;
  /// Parallel to docs: 1 when CollectWordRefs succeeded (it fails on
  /// exactly the inputs EncryptedDocument::ReadFrom rejects). A scan
  /// hitting a 0 re-parses for the exact error status the scalar path
  /// would have returned.
  std::vector<uint8_t> doc_wellformed;
  /// False when the arena could not be built (offsets would overflow
  /// uint32); the scan falls back to the per-document scalar path.
  bool arena_built = false;

  void Seal();

  /// The arena size/ref-count ceiling Seal() enforces (normally the
  /// uint32 offset limit). Tests lower it to force the scalar-fallback
  /// branch without materializing 4 GiB of ciphertext; production code
  /// never calls this. Restore the default (0xffffffff) afterwards.
  static void SetArenaCapForTesting(uint64_t cap);
};

/// One document matched by a snapshot select, in storage order: the
/// global leaf position (for the proof), the record identity (for the
/// observation log), and the parsed document (for the response).
struct SnapshotMatch {
  uint64_t position = 0;
  uint64_t rid_packed = 0;
  swp::EncryptedDocument doc;
};

/// \brief One relation frozen at a publish point. Everything is
/// immutable after construction; const methods are safe from any
/// number of threads concurrently.
class RelationSnapshot {
 public:
  static constexpr uint64_t kNotFound = ~uint64_t{0};

  uint32_t check_length = 4;
  size_t num_docs = 0;
  std::vector<std::shared_ptr<const SnapshotChunk>> chunks;
  /// Global position of chunks[i].docs[0]; parallel to chunks.
  std::vector<uint64_t> chunk_first;
  /// Frozen copy of the relation's trapdoor index at publish time, or
  /// null when the runtime option disables the index. Readers consult
  /// it only through Peek (stats-free); hit/miss accounting lives in
  /// server-level atomics so the frozen copy stays truly immutable.
  std::shared_ptr<const planner::TrapdoorIndex> index;
  /// Frozen Merkle tree (null when integrity is off) plus the epoch /
  /// attestation metadata proofs are built from. Pinning these with
  /// the documents is what makes a reader's ResultProof consistent
  /// under racing mutations: the proof's epoch and root always match
  /// the documents it covers.
  std::shared_ptr<const crypto::MerkleTree> tree;
  uint64_t epoch = 0;
  uint64_t attested_epoch = 0;
  Bytes root_signature;
  /// Frozen authenticated search structure (null when integrity is
  /// off): the proof source for CompletenessProofs, pinned with the
  /// documents and the row tree so a reader's completeness evidence
  /// always describes the exact state its results came from.
  std::shared_ptr<const crypto::SearchTree> search;
  /// The owner's signature over (relation, attested_epoch, search
  /// root); empty until attested, stale once epoch moves past
  /// attested_epoch (same rule as root_signature).
  Bytes search_signature;
  /// Server-wide generation stamp of the relation's DOCUMENT state
  /// (bumps on store/append/delete-with-matches, not on index or
  /// attestation changes). Lets a reader's deferred scan-memoization
  /// prove its result still describes the live documents.
  uint64_t doc_generation = 0;
  /// Total word slots across the relation (copied from the live
  /// relation at publish, so locked and snapshot EXPLAIN agree) — the
  /// predicted match_evals upper bound a full scan reports.
  uint64_t word_slots = 0;
  /// Whether Scan runs through the batched match kernel over the chunk
  /// arenas (ServerRuntimeOptions::enable_scan_kernel at publish time).
  /// Either way results, proofs, and observation entries are
  /// byte-identical; this is purely an A/B performance switch.
  bool use_scan_kernel = true;

  /// rid.Pack() -> global leaf position; kNotFound when absent.
  uint64_t PositionOf(uint64_t rid_packed) const;

  /// The frozen document at global position `position` (< num_docs).
  const SnapshotDoc& doc(uint64_t position) const;

  /// Parses the frozen bytes at `position` — the snapshot twin of
  /// runtime::ReadStoredDocument (same bytes, same parse).
  Result<swp::EncryptedDocument> ParseDoc(uint64_t position) const;

  /// Index-path fetch: resolves a memoized posting list (packed record
  /// ids, storage order) to parsed documents + leaf positions. The
  /// frozen index and frozen documents were copied in the same
  /// critical section, so every posting resolves by construction.
  Status FetchPostings(const std::vector<uint64_t>& postings,
                       std::vector<SnapshotMatch>* out) const;

  /// Scan-path execution: the sharded full trapdoor scan over the
  /// frozen documents, mirroring runtime::ShardedRelation exactly
  /// (same balanced contiguous split, same SwpParams, same match
  /// predicate, storage order). `pool` null runs inline. When
  /// use_scan_kernel is set the scan batches PRF evaluations through
  /// one MatchContext per shard over the chunk arenas — results are
  /// bit-identical to the scalar path, only faster. `match_evals`,
  /// when non-null, accumulates the PRF evaluations the kernel
  /// performed (the per-query accounting the obs stack exports).
  Status Scan(const swp::Trapdoor& trapdoor, size_t num_shards,
              runtime::ThreadPool* pool, std::vector<SnapshotMatch>* out,
              uint64_t* match_evals = nullptr) const;
};

/// \brief The whole server's published state: one frozen relation per
/// name. Swapped wholesale (the map is small — shared_ptr copies) under
/// the dispatch lock; loaded with one atomic acquire by readers.
struct ServerSnapshot {
  std::map<std::string, std::shared_ptr<const RelationSnapshot>> relations;
};

}  // namespace server
}  // namespace dbph

#endif  // DBPH_SERVER_SNAPSHOT_H_
